(* A minimal task pool behind a first-class backend API.

   Three backends share one [pool] configuration record:

   - [`Seq]: in-process, sequential — the bit-identity reference.
   - [`Fork]: the original process pool.  [run] is the streaming pool:
     tasks are dealt round-robin, worker [w] owns indices w, w+jobs, ...
     Each worker writes [(index, result)] pairs to its pipe as they
     complete, flushing after every task, so a worker that dies mid-chunk
     loses only the tasks it had not yet flushed — the parent fills those
     with [fallback].  The parent drains the workers one at a time; pipes
     buffer in the kernel, so slower workers simply block on write until
     their turn, and no deadlock is possible with single-reader pipes.
     [run_supervised] adds the fault model long evolution runs need: one
     fork per attempt, a wall-clock deadline enforced from the parent (a
     worker stuck in a tight loop or a blocking C call cannot be trusted
     to deliver its own SIGALRM), exponential-backoff retries on a fresh
     worker, and a typed outcome per task instead of a silent fallback.
   - [`Domains]: an OCaml 5 shared-memory work pool — [Domain.spawn]ed
     workers pulling task indices from one [Atomic] counter, no fork and
     no [Marshal] round-trip per task.  Each result is written to a
     distinct slot of the output array, so workers never race.  A domain
     cannot be killed, so [run_supervised] enforces deadlines
     cooperatively: the supervisor installs a [Cancel] token around each
     attempt, the evaluation stack polls it at safepoints and the
     resulting [Cancelled] becomes a [Timed_out], with the same retry /
     backoff schedule as the fork supervisor.  A task that ignores its
     token past a grace period gets its worker {e quarantined}: the
     domain is marked poisoned and abandoned (it exits on its own if the
     task ever returns) and a fresh domain takes over its slot, so one
     runaway cannot absorb the pool.

   The two parallel backends are mutually exclusive per process, in one
   direction: the OCaml 5 runtime permanently forbids [Unix.fork] once
   any domain has ever been spawned (even after [Domain.join]).  The
   first domains-pool run therefore retires [`Fork] for the rest of the
   process — [capabilities] reflects that, and later [`Fork] requests
   degrade to the sequential / in-process paths with a warning, exactly
   as on a platform without [fork].  Fork first, domains after, or pick
   one backend per process. *)

type backend = [ `Seq | `Fork | `Domains ]

let available = Sys.unix

(* Sticky: set before the first Domain.spawn, never cleared (terminated
   domains keep fork forbidden for the life of the process). *)
let domains_used = ref false

let fork_usable () = available && not !domains_used

let warned_fork_after_domains = ref false

let warn_fork_after_domains () =
  if not !warned_fork_after_domains then begin
    warned_fork_after_domains := true;
    Logs.warn (fun m ->
        m "parmap: the fork backend is retired once domains have run in \
           this process (the runtime forbids fork after Domain.spawn); \
           running in-process instead")
  end

let backend_name = function
  | `Seq -> "seq"
  | `Fork -> "fork"
  | `Domains -> "domains"

let backend_of_name = function
  | "seq" -> Some `Seq
  | "fork" -> Some `Fork
  | "domains" -> Some `Domains
  | _ -> None

(* Domains are part of the OCaml 5 runtime and exist on every platform;
   forking is Unix-only, and retired once a domains pool has run. *)
let capabilities () : backend list =
  if fork_usable () then [ `Seq; `Fork; `Domains ] else [ `Seq; `Domains ]

type pool = {
  backend : backend;
  jobs : int;
  timeout_s : float option;
  retries : int;
  backoff_s : float;
  ignored_limits : string list;
}

let warned_ignored_limits = ref false

let pool ?(backend = `Fork) ?(jobs = 1) ?timeout_s ?(retries = 1)
    ?(backoff_s = 0.05) () =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.pool: jobs must be a positive worker count (got %d)" jobs);
  (match timeout_s with
  | Some t when (not (Float.is_finite t)) || t <= 0.0 ->
    invalid_arg "Parmap.pool: timeout_s must be a positive number of seconds"
  | _ -> ());
  if retries < 0 then invalid_arg "Parmap.pool: retries must be >= 0";
  if (not (Float.is_finite backoff_s)) || backoff_s < 0.0 then
    invalid_arg "Parmap.pool: backoff_s must be >= 0";
  (* Supervision limits the chosen backend cannot honor.  Both parallel
     backends now enforce deadlines and retries; only [`Seq] runs
     unsupervised.  [retries = 1] is the constructor default, so only a
     value that must have been chosen deliberately is flagged. *)
  let ignored_limits =
    match backend with
    | `Seq ->
      (if timeout_s <> None then [ "timeout_s" ] else [])
      @ (if retries > 1 then [ "retries" ] else [])
    | `Fork | `Domains -> []
  in
  if ignored_limits <> [] && not !warned_ignored_limits then begin
    warned_ignored_limits := true;
    Logs.warn (fun m ->
        m
          "parmap: %s configured on the seq backend, which runs \
           unsupervised (no deadlines, no retries); the limits will be \
           ignored"
          (String.concat "/" ignored_limits))
  end;
  { backend; jobs; timeout_s; retries; backoff_s; ignored_limits }

(* Every blocking syscall goes through here: a signal delivered while the
   parent is reaping or draining (SIGCHLD, a profiler's SIGPROF, an
   interval timer) makes the call fail with EINTR, and treating that as a
   real failure misreports a healthy worker as lost.  Restart the call
   instead. *)
let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let sequential ~fallback f xs =
  Array.map (fun x -> try f x with _ -> fallback) xs

let emit_map_record ~backend ~jobs ~tasks ~t_start =
  let wall = Telemetry.now_s () -. t_start in
  Telemetry.observe "parmap.map_wall_s" wall;
  Telemetry.emit ~kind:"pool"
    [
      ("mode", Telemetry.String "map");
      ("backend", Telemetry.String (backend_name backend));
      ("jobs", Telemetry.Int jobs);
      ("tasks", Telemetry.Int tasks);
      ("wall_s", Telemetry.Float wall);
    ]

let fork_map ~jobs ~fallback f xs =
  let n = Array.length xs in
  let jobs = min jobs (max 1 n) in
  if n = 0 || jobs <= 1 then sequential ~fallback f xs
  else begin
    (* Anything buffered in the parent must not be replayed by children
       (children exit through [Unix._exit], which skips flushing). *)
    flush stdout;
    flush stderr;
    let tel = Telemetry.enabled () in
    let t_start = if tel then Telemetry.now_s () else 0.0 in
    let results = Array.make n fallback in
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* The child inherits the parent's sink descriptor; writing to it
           would interleave torn lines into the parent's stream. *)
        Telemetry.set_sink None;
        Unix.close rd;
        let oc = Unix.out_channel_of_descr wr in
        (try
           let i = ref w in
           while !i < n do
             let v = try f xs.(!i) with _ -> fallback in
             Marshal.to_channel oc (!i, v) [];
             flush oc;
             i := !i + jobs
           done;
           close_out oc
         with _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let workers = Array.init jobs spawn in
    Array.iter
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        (try
           while true do
             let (i, v) : int * _ = Marshal.from_channel ic in
             if i >= 0 && i < n then results.(i) <- v
           done
         with
        | End_of_file -> ()
        | Failure msg ->
          (* A truncated [Marshal] header or payload: the worker died
             mid-write.  Clean EOF ends at a message boundary; a torn
             stream means in-flight work was lost. *)
          Logs.warn (fun m ->
              m "parmap: torn result stream from worker %d (%s)" pid msg));
        (try close_in ic with _ -> ());
        (match retry_eintr (fun () -> Unix.waitpid [] pid) with
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
          Logs.warn (fun m ->
              m "parmap: worker %d %s" pid (describe_status status))
        | exception Unix.Unix_error _ -> ()))
      workers;
    if tel then emit_map_record ~backend:`Fork ~jobs ~tasks:n ~t_start;
    results
  end

(* Run [body] as one of the pool's workers on the calling domain, with
   telemetry suppressed exactly as it is in the spawned workers (and in
   forked children), then restore. *)
let as_suppressed_worker body =
  Telemetry.suppress_in_domain true;
  Fun.protect
    ~finally:(fun () -> Telemetry.suppress_in_domain false)
    body

let domains_map ~jobs ~fallback f xs =
  let n = Array.length xs in
  let jobs = min jobs (max 1 n) in
  if n = 0 || jobs <= 1 then sequential ~fallback f xs
  else begin
    let tel = Telemetry.enabled () in
    let t_start = if tel then Telemetry.now_s () else 0.0 in
    let results = Array.make n fallback in
    let next = Atomic.make 0 in
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- (try f xs.(i) with _ -> fallback);
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      Telemetry.suppress_in_domain true;
      body ()
    in
    domains_used := true;
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    as_suppressed_worker body;
    Array.iter Domain.join spawned;
    if tel then emit_map_record ~backend:`Domains ~jobs ~tasks:n ~t_start;
    results
  end

let run pool ~fallback f xs =
  match pool.backend with
  | `Seq -> sequential ~fallback f xs
  | `Fork ->
    if fork_usable () then fork_map ~jobs:pool.jobs ~fallback f xs
    else begin
      if available then warn_fork_after_domains ();
      sequential ~fallback f xs
    end
  | `Domains -> domains_map ~jobs:pool.jobs ~fallback f xs

let map ?(jobs = 1) ~fallback f xs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.map: jobs must be a positive worker count (got %d)" jobs);
  run (pool ~backend:`Fork ~jobs ()) ~fallback f xs

(* --- Supervised evaluation ---------------------------------------------- *)

type 'b outcome = Ok of 'b | Crashed of string | Timed_out | Gave_up

type stats = {
  completed : int;
  crashes : int;
  timeouts : int;
  retries : int;
  quarantined : int;
}

(* Worker -> parent message.  A worker that dies before writing a full
   message (signal, [exit], runaway allocation) is detected by the parent
   as a truncated buffer at EOF. *)
type 'b reply = Value of 'b | Raised of string

type slot = {
  pid : int;
  fd : Unix.file_descr;
  task : int;
  attempt : int; (* 0-based *)
  deadline : float; (* absolute; [infinity] when no timeout *)
  spawned : float; (* absolute; 0 when telemetry is off *)
  buf : Buffer.t;
}

let insert_delayed ((t, _, _) as entry) l =
  let rec go = function
    | [] -> [ entry ]
    | ((t', _, _) as e) :: rest ->
      if t <= t' then entry :: e :: rest else e :: go rest
  in
  go l

(* No fork (or [`Seq] requested): in-process evaluation.  Exceptions
   still isolate per task, but hangs cannot be interrupted and retries
   are pointless against a deterministic in-process failure. *)
let inprocess_supervised f xs =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let completed = ref 0 in
  let crashes = ref 0 in
  Array.iteri
    (fun i x ->
      outcomes.(i) <-
        (match f x with
        | v ->
          incr completed;
          Ok v
        | exception e ->
          incr crashes;
          Crashed (Printexc.to_string e)))
    xs;
  ( outcomes,
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = 0;
      retries = 0;
      quarantined = 0;
    } )

(* Shared-memory supervision.  A domain cannot be SIGKILLed, so the
   fault model is cooperative: the calling domain acts as the
   supervisor, worker domains pull (task, attempt) pairs from a shared
   queue and run each attempt under a [Cancel] token carrying the
   deadline.  The evaluation stack polls the token at safepoints and
   raises [Cancelled] past the deadline, which the worker reports as a
   timeout; retries and exponential backoff then follow exactly the
   fork supervisor's schedule.

   Tasks that never reach a safepoint (a blocking C call, a chaos
   [Hang]) get the quarantine path: each running attempt carries a
   wall-clock quarantine time — deadline plus a grace period of half
   the timeout (min 50ms), so a hung task is cut off within 1.5x its
   deadline.  The supervisor sweeps for overdue attempts, wins the
   attempt's [settled] CAS so any late worker result is discarded,
   charges the task a timeout, marks the worker poisoned and spawns a
   fresh domain in its slot.  A poisoned domain is abandoned, never
   joined: it exits on its own if the hung task ever returns (its next
   dequeue sees the poison flag), and a domain parked in a blocking
   section does not obstruct the runtime.

   Results travel back through a settled-CAS-guarded record plus a
   mutex-protected done-queue; a self-pipe wakes the supervisor's
   [select], whose timeout is the nearest of the pending quarantine
   times and retry wake-ups. *)

type 'b attempt_result = Done of 'b | Failed of string | Deadline

type 'b running = {
  r_task : int;
  r_attempt : int; (* 0-based *)
  r_quarantine_at : float; (* absolute; [infinity] when no timeout *)
  r_settled : bool Atomic.t; (* CAS-won by worker or quarantine sweep *)
  mutable r_result : 'b attempt_result; (* written before the worker's CAS *)
}

type 'b wstate = {
  w_poisoned : bool Atomic.t;
  w_current : 'b running option Atomic.t;
}

let domains_supervised ~jobs ~timeout_s ~retries ~backoff_s f xs =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let jobs = max 1 (min jobs n) in
  let now () = Unix.gettimeofday () in
  let tel = Telemetry.enabled () in
  let t_start = if tel then Telemetry.now_s () else 0.0 in
  let completed = ref 0 in
  let crashes = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let quarantined = ref 0 in
  let grace =
    match timeout_s with
    | Some t -> Float.max 0.05 (0.5 *. t)
    | None -> infinity
  in
  let m = Mutex.create () in
  let c = Condition.create () in
  let work_q : (int * int) Queue.t = Queue.create () in
  let done_q : 'b running Queue.t = Queue.create () in
  let stop = ref false in
  let note_r, note_w = Unix.pipe () in
  let notify =
    let b = Bytes.make 1 '!' in
    fun () -> ignore (retry_eintr (fun () -> Unix.write note_w b 0 1))
  in
  (* Queue every first attempt before any worker starts, so workers find
     work without waiting on a signal. *)
  for i = 0 to n - 1 do
    Queue.add (i, 0) work_q
  done;
  let worker ws () =
    Telemetry.suppress_in_domain true;
    let take () =
      Mutex.lock m;
      let rec go () =
        if !stop then None
        else
          match Queue.take_opt work_q with
          | Some t -> Some t
          | None ->
            Condition.wait c m;
            go ()
      in
      let t = go () in
      Mutex.unlock m;
      t
    in
    let rec loop () =
      if not (Atomic.get ws.w_poisoned) then
        match take () with
        | None -> ()
        | Some (task, attempt) ->
          let tok = Cancel.create ?deadline_s:timeout_s () in
          let r =
            {
              r_task = task;
              r_attempt = attempt;
              r_quarantine_at = Cancel.deadline tok +. grace;
              r_settled = Atomic.make false;
              r_result = Deadline;
            }
          in
          Atomic.set ws.w_current (Some r);
          let res =
            match
              Cancel.with_token tok (fun () ->
                  Chaos.task_point ~isolated:false ~key:task
                    ~attempt:(attempt + 1);
                  f xs.(task))
            with
            | v -> Done v
            | exception Cancel.Cancelled ->
              (* Only a cancelled token makes [Cancelled] a timeout; a
                 task raising it spuriously is a crash. *)
              if Cancel.cancelled tok then Deadline
              else Failed "task raised Cancelled"
            | exception e -> Failed (Printexc.to_string e)
          in
          Atomic.set ws.w_current None;
          r.r_result <- res;
          if Atomic.compare_and_set r.r_settled false true then begin
            Mutex.lock m;
            Queue.add r done_q;
            Mutex.unlock m;
            notify ()
          end;
          (* A lost CAS means the sweep quarantined this attempt — the
             poison flag ends the loop above. *)
          loop ()
    in
    loop ()
  in
  domains_used := true;
  let spawn_worker () =
    let ws =
      { w_poisoned = Atomic.make false; w_current = Atomic.make None }
    in
    (ws, Domain.spawn (worker ws))
  in
  let live = ref (List.init jobs (fun _ -> spawn_worker ())) in
  let delayed = ref [] in
  let remaining = ref n in
  let handle_failure ~task ~attempt kind =
    (match kind with
    | `Crash msg ->
      incr crashes;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d crashed: %s" task (attempt + 1) msg)
    | `Timeout ->
      incr timeouts;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d timed out after %.1fs" task
            (attempt + 1)
            (Option.value ~default:0.0 timeout_s)));
    if attempt < retries then begin
      incr retried;
      let delay = backoff_s *. (2.0 ** float_of_int attempt) in
      delayed := insert_delayed (now () +. delay, task, attempt + 1) !delayed
    end
    else begin
      outcomes.(task) <-
        (if retries = 0 then
           match kind with `Crash msg -> Crashed msg | `Timeout -> Timed_out
         else Gave_up);
      decr remaining
    end
  in
  let handle_result r =
    match r.r_result with
    | Done v ->
      outcomes.(r.r_task) <- Ok v;
      incr completed;
      decr remaining
    | Failed msg -> handle_failure ~task:r.r_task ~attempt:r.r_attempt (`Crash msg)
    | Deadline -> handle_failure ~task:r.r_task ~attempt:r.r_attempt `Timeout
  in
  let drain_buf = Bytes.create 512 in
  while !remaining > 0 do
    let t = now () in
    (* Promote delayed retries whose backoff has elapsed. *)
    let promoted = ref false in
    let rec promote () =
      match !delayed with
      | (nb, task, att) :: rest when nb <= t ->
        delayed := rest;
        Mutex.lock m;
        Queue.add (task, att) work_q;
        Mutex.unlock m;
        promoted := true;
        promote ()
      | _ -> ()
    in
    promote ();
    if !promoted then begin
      Mutex.lock m;
      Condition.broadcast c;
      Mutex.unlock m
    end;
    (* Sleep until the nearest quarantine time or retry wake-up, or
       until a worker pokes the pipe. *)
    let nearest_quarantine =
      List.fold_left
        (fun acc (ws, _) ->
          match Atomic.get ws.w_current with
          | Some r when not (Atomic.get r.r_settled) ->
            Float.min acc r.r_quarantine_at
          | _ -> acc)
        infinity !live
    in
    let nearest_retry =
      match !delayed with (nb, _, _) :: _ -> nb | [] -> infinity
    in
    let until = Float.min nearest_quarantine nearest_retry in
    let tmo =
      match timeout_s with
      | None -> if until = infinity then -1.0 else Float.max 0.0 (until -. now ())
      | Some _ ->
        (* A deadline is in force, and a worker may pick up a queued
           task and hang before the supervisor ever sees the attempt —
           never sleep past a 50ms poll, or the quarantine sweep could
           miss it. *)
        Float.min 0.05 (Float.max 0.0 (until -. now ()))
    in
    (match Unix.select [ note_r ] [] [] tmo with
    | [], _, _ -> ()
    | _ ->
      ignore
        (retry_eintr (fun () ->
             Unix.read note_r drain_buf 0 (Bytes.length drain_buf)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Collect finished attempts. *)
    let finished = ref [] in
    Mutex.lock m;
    Queue.iter (fun r -> finished := r :: !finished) done_q;
    Queue.clear done_q;
    Mutex.unlock m;
    List.iter handle_result (List.rev !finished);
    (* Quarantine sweep: any attempt past its quarantine time whose
       settled CAS we win is charged a timeout, its worker poisoned and
       replaced. *)
    let t = now () in
    live :=
      List.map
        (fun ((ws, _) as w) ->
          match Atomic.get ws.w_current with
          | Some r
            when r.r_quarantine_at <= t
                 && Atomic.compare_and_set r.r_settled false true ->
            incr quarantined;
            Atomic.set ws.w_poisoned true;
            Logs.warn (fun m ->
                m
                  "parmap: task %d attempt %d ignored its deadline past the \
                   grace period; quarantining its worker and respawning the \
                   slot"
                  r.r_task (r.r_attempt + 1));
            handle_failure ~task:r.r_task ~attempt:r.r_attempt `Timeout;
            spawn_worker ()
          | _ -> w)
        !live
  done;
  Mutex.lock m;
  stop := true;
  Condition.broadcast c;
  Mutex.unlock m;
  List.iter
    (fun (ws, d) -> if not (Atomic.get ws.w_poisoned) then Domain.join d)
    !live;
  (try Unix.close note_r with Unix.Unix_error _ -> ());
  (try Unix.close note_w with Unix.Unix_error _ -> ());
  if tel then begin
    let wall = Telemetry.now_s () -. t_start in
    Telemetry.incr ~by:!crashes "parmap.crashes";
    Telemetry.incr ~by:!timeouts "parmap.timeouts";
    Telemetry.incr ~by:!retried "parmap.retries";
    Telemetry.incr ~by:!quarantined "parmap.quarantined";
    Telemetry.emit ~kind:"pool"
      [
        ("mode", Telemetry.String "supervised");
        ("backend", Telemetry.String "domains");
        ("jobs", Telemetry.Int jobs);
        ("tasks", Telemetry.Int n);
        ("completed", Telemetry.Int !completed);
        ("crashes", Telemetry.Int !crashes);
        ("timeouts", Telemetry.Int !timeouts);
        ("retries", Telemetry.Int !retried);
        ("quarantined", Telemetry.Int !quarantined);
        ("wall_s", Telemetry.Float wall);
      ]
  end;
  ( outcomes,
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = !timeouts;
      retries = !retried;
      quarantined = !quarantined;
    } )

let fork_supervised ~jobs ~timeout_s ~retries ~backoff_s f xs =
  let n = Array.length xs in
  let outcomes = Array.make n Gave_up in
  let completed = ref 0 in
  let crashes = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let mk_stats () =
    {
      completed = !completed;
      crashes = !crashes;
      timeouts = !timeouts;
      retries = !retried;
      quarantined = 0;
    }
  in
  flush stdout;
  flush stderr;
  let jobs = max 1 (min jobs n) in
  let now () = Unix.gettimeofday () in
  (* Telemetry: per-task latency and queue wait are observed from the
     parent (spawn-to-EOF wall clock), so they cover the forked path the
     in-process spans cannot see.  All of it is guarded: when disabled,
     the pool never reads the clock on its behalf. *)
  let tel = Telemetry.enabled () in
  let t_start = if tel then Telemetry.now_s () else 0.0 in
  let task_hist = Telemetry.Histogram.create () in
  let queue_hist = Telemetry.Histogram.create () in
  let busy = ref 0.0 in
  let note_done slot =
    if tel && slot.spawned > 0.0 then begin
      let d = now () -. slot.spawned in
      Telemetry.Histogram.add task_hist d;
      Telemetry.observe "parmap.task_s" d;
      busy := !busy +. d
    end
  in
  (* Tasks awaiting dispatch, FIFO, stamped with the time they became
     ready; failed attempts wait out their backoff in [delayed] (sorted
     by wake-up time). *)
  let ready : (int * int * float) Queue.t = Queue.create () in
  let enq0 = if tel then now () else 0.0 in
  for i = 0 to n - 1 do
    Queue.add (i, 0, enq0) ready
  done;
  let delayed = ref [] in
  let active = ref [] in
  let remaining = ref n in
  let chunk = Bytes.create 65536 in
  let wait_status pid =
    match retry_eintr (fun () -> Unix.waitpid [] pid) with
    | _, status -> Some status
    | exception Unix.Unix_error _ -> None
  in
  let finish_failure slot kind =
    (match kind with
    | `Crash msg ->
      incr crashes;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d crashed: %s" slot.task
            (slot.attempt + 1) msg)
    | `Timeout ->
      incr timeouts;
      Logs.warn (fun m ->
          m "parmap: task %d attempt %d timed out after %.1fs" slot.task
            (slot.attempt + 1)
            (Option.value ~default:0.0 timeout_s)));
    if slot.attempt < retries then begin
      incr retried;
      let delay = backoff_s *. (2.0 ** float_of_int slot.attempt) in
      delayed :=
        insert_delayed (now () +. delay, slot.task, slot.attempt + 1) !delayed
    end
    else begin
      outcomes.(slot.task) <-
        (if retries = 0 then
           match kind with
           | `Crash msg -> Crashed msg
           | `Timeout -> Timed_out
         else Gave_up);
      decr remaining
    end
  in
  let finish_eof slot =
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    let status = wait_status slot.pid in
    let data = Buffer.to_bytes slot.buf in
    let reply =
      if Bytes.length data = 0 then None
      else
        match (Marshal.from_bytes data 0 : _ reply) with
        | r -> Some r
        | exception _ -> None
    in
    match reply with
    | Some (Value v) ->
      outcomes.(slot.task) <- Ok v;
      incr completed;
      decr remaining
    | Some (Raised msg) -> finish_failure slot (`Crash ("task raised: " ^ msg))
    | None ->
      let msg =
        match status with
        | Some (Unix.WEXITED 0) -> "worker exited before writing a result"
        | Some status -> "worker " ^ describe_status status
        | None -> "worker vanished"
      in
      finish_failure slot (`Crash msg)
  in
  let kill_slot slot =
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    ignore (wait_status slot.pid)
  in
  let spawn (task, attempt, enq) =
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | exception Unix.Unix_error _ ->
      (* Fork pressure (EAGAIN): try again shortly, no attempt charged. *)
      Unix.close rd;
      Unix.close wr;
      delayed := insert_delayed (now () +. 0.05, task, attempt) !delayed
    | 0 ->
      Telemetry.set_sink None;
      Unix.close rd;
      List.iter
        (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
        !active;
      let reply =
        match
          Chaos.task_point ~isolated:true ~key:task ~attempt:(attempt + 1);
          f xs.(task)
        with
        | v -> Value v
        | exception e -> Raised (Printexc.to_string e)
      in
      let b = Marshal.to_bytes (reply : _ reply) [] in
      let len = Bytes.length b in
      (try
         let off = ref 0 in
         while !off < len do
           off := !off + retry_eintr (fun () -> Unix.write wr b !off (len - !off))
         done;
         Unix.close wr
       with _ -> ());
      Unix._exit 0
    | pid ->
      Unix.close wr;
      let spawned = if tel then now () else 0.0 in
      if tel && enq > 0.0 then begin
        let w = spawned -. enq in
        Telemetry.Histogram.add queue_hist w;
        Telemetry.observe "parmap.queue_wait_s" w
      end;
      let deadline =
        match timeout_s with Some t -> now () +. t | None -> infinity
      in
      active :=
        { pid; fd = rd; task; attempt; deadline; spawned;
          buf = Buffer.create 256 }
        :: !active
  in
  while !remaining > 0 do
    let t = now () in
    (* Promote delayed retries whose backoff has elapsed. *)
    let rec promote () =
      match !delayed with
      | (nb, task, att) :: rest when nb <= t ->
        delayed := rest;
        Queue.add (task, att, if tel then t else 0.0) ready;
        promote ()
      | _ -> ()
    in
    promote ();
    while (not (Queue.is_empty ready)) && List.length !active < jobs do
      spawn (Queue.pop ready)
    done;
    if !active = [] then begin
      match !delayed with
      | (nb, _, _) :: _ ->
        let d = nb -. now () in
        if d > 0.0 then (
          (* An interrupted sleep just re-enters the loop, which
             recomputes the remaining backoff. *)
          try Unix.sleepf d
          with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | [] ->
        (* Unreachable: remaining > 0 implies work somewhere. *)
        remaining := 0
    end
    else begin
      let fds = List.map (fun s -> s.fd) !active in
      let nearest_deadline =
        List.fold_left (fun acc s -> Float.min acc s.deadline) infinity
          !active
      in
      let nearest_retry =
        match !delayed with (nb, _, _) :: _ -> nb | [] -> infinity
      in
      let until = Float.min nearest_deadline nearest_retry in
      let tmo =
        if until = infinity then -1.0 else Float.max 0.0 (until -. now ())
      in
      let readable =
        match Unix.select fds [] [] tmo with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun s -> s.fd = fd) !active with
          | None -> ()
          | Some slot -> (
            match retry_eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
            | 0 ->
              active := List.filter (fun s -> s != slot) !active;
              note_done slot;
              finish_eof slot
            | k -> Buffer.add_subbytes slot.buf chunk 0 k
            | exception Unix.Unix_error _ ->
              active := List.filter (fun s -> s != slot) !active;
              (try Unix.close fd with Unix.Unix_error _ -> ());
              ignore (wait_status slot.pid);
              note_done slot;
              finish_failure slot (`Crash "read error on result pipe")))
        readable;
      let t = now () in
      let expired, alive =
        List.partition (fun s -> s.deadline <= t) !active
      in
      active := alive;
      List.iter
        (fun slot ->
          kill_slot slot;
          note_done slot;
          finish_failure slot `Timeout)
        expired
    end
  done;
  if tel then begin
    let wall = Telemetry.now_s () -. t_start in
    Telemetry.incr ~by:!crashes "parmap.crashes";
    Telemetry.incr ~by:!timeouts "parmap.timeouts";
    Telemetry.incr ~by:!retried "parmap.retries";
    let pct h p = Telemetry.Histogram.percentile h p in
    Telemetry.emit ~kind:"pool"
      [
        ("mode", Telemetry.String "supervised");
        ("backend", Telemetry.String "fork");
        ("jobs", Telemetry.Int jobs);
        ("tasks", Telemetry.Int n);
        ("completed", Telemetry.Int !completed);
        ("crashes", Telemetry.Int !crashes);
        ("timeouts", Telemetry.Int !timeouts);
        ("retries", Telemetry.Int !retried);
        ("wall_s", Telemetry.Float wall);
        ("busy_s", Telemetry.Float !busy);
        ( "utilization",
          Telemetry.Float
            (if wall > 0.0 then !busy /. (wall *. float_of_int jobs) else 0.0)
        );
        ("task_p50_s", Telemetry.Float (pct task_hist 50.0));
        ("task_p95_s", Telemetry.Float (pct task_hist 95.0));
        ("task_max_s", Telemetry.Float (Telemetry.Histogram.max task_hist));
        ("queue_p50_s", Telemetry.Float (pct queue_hist 50.0));
        ("queue_p95_s", Telemetry.Float (pct queue_hist 95.0));
        ("queue_max_s", Telemetry.Float (Telemetry.Histogram.max queue_hist));
      ]
  end;
  (outcomes, mk_stats ())

let empty_stats =
  { completed = 0; crashes = 0; timeouts = 0; retries = 0; quarantined = 0 }

let run_supervised pool f xs =
  if Array.length xs = 0 then ([||], empty_stats)
  else
    match pool.backend with
    | `Seq -> inprocess_supervised f xs
    | `Domains ->
      domains_supervised ~jobs:pool.jobs ~timeout_s:pool.timeout_s
        ~retries:pool.retries ~backoff_s:pool.backoff_s f xs
    | `Fork ->
      if fork_usable () then
        fork_supervised ~jobs:pool.jobs ~timeout_s:pool.timeout_s
          ~retries:pool.retries ~backoff_s:pool.backoff_s f xs
      else begin
        if available then warn_fork_after_domains ();
        inprocess_supervised f xs
      end

let supervised ?(jobs = 1) ?timeout_s ?(retries = 1) ?(backoff_s = 0.05) f xs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf
         "Parmap.supervised: jobs must be a positive worker count (got %d)"
         jobs);
  run_supervised (pool ~backend:`Fork ~jobs ?timeout_s ~retries ~backoff_s ())
    f xs
