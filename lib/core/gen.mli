(** Random expression generation: the classic grow / full methods and
    ramped half-and-half initialization [Koza 92]. *)

type config = {
  fs : Feature_set.t;
  max_depth : int;    (** depth cap for initial trees *)
  leaf_prob : float;  (** probability a grown node is a leaf early *)
  const_prob : float; (** probability a real leaf is a constant *)
}

val default_config : Feature_set.t -> config

val random_const : Random.State.t -> float
(** Constants mix a fine [0,2) range with a wider exponential range. *)

val gen_real : config -> Random.State.t -> full:bool -> int -> Expr.rexpr
(** [gen_real cfg rng ~full depth]: a random real-valued tree of height at
    most [depth]; [full] forces branching until the depth budget runs
    out. *)

val gen_bool : config -> Random.State.t -> full:bool -> int -> Expr.bexpr

val genome :
  config -> Random.State.t -> sort:[ `Real | `Bool ] -> full:bool -> int ->
  Expr.genome

val ramped :
  config -> Random.State.t -> sort:[ `Real | `Bool ] -> count:int ->
  Expr.genome list
(** Ramped half-and-half: depths ramp over [2, max_depth]; alternate trees
    are full / grown. *)
