(** Concrete syntax for priority functions: the S-expression notation of
    the paper's Table 1 ([(add R R)], [(cmul B R R)], [(lt R R)], ...),
    extended with [(div R R)].

    Printing resolves feature indices to names through a {!Feature_set.t};
    parsing resolves names to indices.  Bare numbers parse as constants,
    bare identifiers as feature references of the expected sort. *)

exception Parse_error of string

val parse_real : Feature_set.t -> string -> Expr.rexpr
(** @raise Parse_error on malformed input or unknown features. *)

val parse_bool : Feature_set.t -> string -> Expr.bexpr
(** @raise Parse_error on malformed input or unknown features. *)

val parse_genome :
  Feature_set.t -> sort:[ `Real | `Bool ] -> string -> Expr.genome

val to_string : Feature_set.t -> Expr.genome -> string
(** Round-trips with {!parse_genome}: parsing the output and printing
    again yields the same string. *)

val real_to_string : Feature_set.t -> Expr.rexpr -> string
val bool_to_string : Feature_set.t -> Expr.bexpr -> string
