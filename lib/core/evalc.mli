(** Compiled genome evaluation.

    [compile] flattens a genome once into a flat, register-coded bytecode
    — operators pre-dispatched to integer opcodes, feature lookups
    resolved to environment slots, constants interned in a float pool —
    so the heuristic decision points in the compiler's inner loops pay
    array indexing instead of tree-walking.  {!Eval} remains the
    executable reference: results are bit-identical, including the
    [div_epsilon] protected-division rule and non-finite collapse to 0
    (property-tested at scale and fuzzed by the [compiled_vs_walk]
    oracle).

    Two code streams are compiled from each tree.  The scalar stream
    drives the per-point entry points ({!run}, {!real_fn}, …):
    [Rtern]/[Rcmul]/[Band]/[Bor] compile to conditional jumps, so it
    short-circuits exactly as the tree-walker does — the same subtrees
    are evaluated, the same environment slots are read, and an
    out-of-range feature index raises [Invalid_argument] from the same
    environment-array access in both evaluators.  The strict stream
    drives {!run_batch}: straight-line code with select instructions,
    executed one instruction across the whole batch at a time, with
    repeated [arg]/[const] leaves deduplicated and registers recycled
    after their last use.  Strict evaluation cannot change a value —
    every operation is total, pure and deterministic — so batch results
    are bit-identical too; the only observable difference is that
    [run_batch] reads every feature the expression mentions, including
    ones the walker's short-circuiting would skip.

    Compiled programs are immutable and safe to share across domains;
    the closures returned by {!real_fn} and {!bool_fn} carry private
    scratch registers and must not be shared between concurrently
    running domains. *)

type t
(** A compiled genome: code stream, constant pool, register counts. *)

val compile : Expr.genome -> t
val compile_real : Expr.rexpr -> t
val compile_bool : Expr.bexpr -> t

val sort : t -> [ `Real | `Bool ]

val disasm : t -> string
(** Human-readable bytecode listing, for debugging and documentation. *)

val n_instrs : t -> int
(** Number of bytecode instructions (tree nodes plus the [mov]s and
    jumps that wire up short-circuited conditionals). *)

val run : t -> Feature_set.env -> [ `Real of float | `Bool of bool ]
(** Mirrors {!Eval.genome}. *)

val run_real : t -> Feature_set.env -> float
(** @raise Invalid_argument on a boolean program. *)

val run_bool : t -> Feature_set.env -> bool
(** @raise Invalid_argument on a real program. *)

val run_batch : t -> Feature_set.env array -> float array
(** [run_batch p envs] evaluates one compiled real-valued genome over an
    array of feature vectors using the strict batch engine: one
    instruction is executed across the whole (cache-sized chunk of the)
    batch at a time, so operator dispatch is amortised over the batch
    and the inner loops are tight float-array walks.  Results are
    bit-identical to [Eval.real] on every point; unlike the per-point
    entry points, the engine is strict, so it reads every feature the
    expression mentions even where the walker would short-circuit.
    @raise Invalid_argument on a boolean program. *)

val run_batch_bool : t -> Feature_set.env array -> bool array
(** Boolean counterpart of {!run_batch}: one compiled predicate genome
    over an array of feature vectors, bit-identical to [Eval.bool] on
    every point.
    @raise Invalid_argument on a real program. *)

val real_fn : Expr.rexpr -> Feature_set.env -> float
(** [real_fn e] compiles [e] once and returns a closure bit-identical to
    [Eval.real _ e].  The closure owns its scratch registers: reuse it
    freely within one domain, never concurrently from several. *)

val bool_fn : Expr.bexpr -> Feature_set.env -> bool
(** Boolean counterpart of {!real_fn}. *)
