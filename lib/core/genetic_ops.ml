(* Genetic operators: depth-fair subtree crossover and the mutation
   operators of [Banzhaf et al. 98]: subtree replacement, point mutation of
   operators, and Gaussian perturbation of constants. *)

(* Crossover: select a node depth-fairly in the first parent, then a node
   of the same sort depth-fairly in the second parent, and exchange the
   subtrees.  If the second parent has no node of the needed sort (e.g. a
   pure-real tree when a Boolean subtree was picked), the first parent is
   returned unchanged — the mating simply fails, as in standard GP
   practice with typed trees. *)
let crossover rng (a : Expr.genome) (b : Expr.genome) : Expr.genome =
  match Tree.pick_depth_fair rng a with
  | None -> a
  | Some na -> (
    match Tree.pick_depth_fair rng ~sort:na.Tree.sort b with
    | None -> a
    | Some nb ->
      let donor = Tree.subtree b nb.Tree.path in
      Tree.replace a na.Tree.path donor)

(* Limit unbounded growth: offspring deeper than [max_depth] are replaced
   by the first parent (a standard Koza-style depth ceiling; parsimony
   pressure in selection does the fine-grained work). *)
let crossover_bounded rng ~max_depth a b =
  let child = crossover rng a b in
  if Expr.depth child > max_depth then a else child

(* --- Mutation ----------------------------------------------------------- *)

let mutate_subtree cfg rng (g : Expr.genome) : Expr.genome =
  match Tree.pick_depth_fair rng g with
  | None -> g
  | Some n ->
    let sort = match n.Tree.sort with
      | Tree.S_real -> `Real
      | Tree.S_bool -> `Bool
    in
    let repl = Gen.genome cfg rng ~sort ~full:false 4 in
    Tree.replace g n.Tree.path repl

(* Point mutation: replace one operator by another of the same arity and
   sort, or perturb one constant. *)
let rec point_real rng (e : Expr.rexpr) : Expr.rexpr =
  let pick_bin a b =
    match Random.State.int rng 4 with
    | 0 -> Expr.Radd (a, b)
    | 1 -> Expr.Rsub (a, b)
    | 2 -> Expr.Rmul (a, b)
    | _ -> Expr.Rdiv (a, b)
  in
  match e with
  | Expr.Radd (a, b) | Expr.Rsub (a, b) | Expr.Rmul (a, b) | Expr.Rdiv (a, b)
    ->
    if Random.State.int rng 3 = 0 then pick_bin a b
    else if Random.State.bool rng then
      (match e with
      | Expr.Radd (a, b) -> Expr.Radd (point_real rng a, b)
      | Expr.Rsub (a, b) -> Expr.Rsub (point_real rng a, b)
      | Expr.Rmul (a, b) -> Expr.Rmul (point_real rng a, b)
      | Expr.Rdiv (a, b) -> Expr.Rdiv (point_real rng a, b)
      | _ -> assert false)
    else
      (match e with
      | Expr.Radd (a, b) -> Expr.Radd (a, point_real rng b)
      | Expr.Rsub (a, b) -> Expr.Rsub (a, point_real rng b)
      | Expr.Rmul (a, b) -> Expr.Rmul (a, point_real rng b)
      | Expr.Rdiv (a, b) -> Expr.Rdiv (a, point_real rng b)
      | _ -> assert false)
  | Expr.Rsqrt a -> Expr.Rsqrt (point_real rng a)
  | Expr.Rtern (c, a, b) ->
    if Random.State.int rng 4 = 0 then Expr.Rcmul (c, a, b)
    else Expr.Rtern (point_bool rng c, point_real rng a, b)
  | Expr.Rcmul (c, a, b) ->
    if Random.State.int rng 4 = 0 then Expr.Rtern (c, a, b)
    else Expr.Rcmul (point_bool rng c, a, point_real rng b)
  | Expr.Rconst k ->
    (* Gaussian-ish multiplicative and additive jitter. *)
    let jitter = 1.0 +. (0.3 *. (Random.State.float rng 2.0 -. 1.0)) in
    Expr.Rconst ((k *. jitter) +. (0.05 *. (Random.State.float rng 2.0 -. 1.0)))
  | Expr.Rarg _ -> e

and point_bool rng (e : Expr.bexpr) : Expr.bexpr =
  match e with
  | Expr.Band (a, b) ->
    if Random.State.int rng 3 = 0 then Expr.Bor (a, b)
    else Expr.Band (point_bool rng a, b)
  | Expr.Bor (a, b) ->
    if Random.State.int rng 3 = 0 then Expr.Band (a, b)
    else Expr.Bor (a, point_bool rng b)
  | Expr.Bnot a -> Expr.Bnot (point_bool rng a)
  | Expr.Blt (a, b) ->
    if Random.State.int rng 3 = 0 then Expr.Bgt (a, b)
    else Expr.Blt (point_real rng a, b)
  | Expr.Bgt (a, b) ->
    if Random.State.int rng 3 = 0 then Expr.Blt (a, b)
    else Expr.Bgt (a, point_real rng b)
  | Expr.Beq (a, b) -> Expr.Beq (point_real rng a, point_real rng b)
  | Expr.Bconst k -> if Random.State.int rng 2 = 0 then Expr.Bconst (not k) else e
  | Expr.Barg _ -> e

let point_mutate rng = function
  | Expr.Real e -> Expr.Real (point_real rng e)
  | Expr.Bool e -> Expr.Bool (point_bool rng e)

(* The mutation applied to the ~5% of offspring Table 2 designates: mostly
   subtree replacement, sometimes a point mutation. *)
let mutate cfg rng ~max_depth (g : Expr.genome) : Expr.genome =
  let m =
    if Random.State.int rng 3 = 0 then point_mutate rng g
    else mutate_subtree cfg rng g
  in
  if Expr.depth m > max_depth then g else m
