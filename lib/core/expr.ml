(* GP expression trees over the primitives of Table 1 of the paper, plus
   protected division, which the paper's best evolved expression (Figure 8)
   uses.  Expressions are strongly typed: real-valued and Boolean-valued
   trees are distinct, matching the paper's two-sorted primitive table. *)

type rexpr =
  | Radd of rexpr * rexpr
  | Rsub of rexpr * rexpr
  | Rmul of rexpr * rexpr
  | Rdiv of rexpr * rexpr            (* protected: y ~ 0 yields x *)
  | Rsqrt of rexpr                   (* protected: sqrt |x| *)
  | Rtern of bexpr * rexpr * rexpr   (* if b then x else y *)
  | Rcmul of bexpr * rexpr * rexpr   (* if b then x*y else y *)
  | Rconst of float
  | Rarg of int                      (* real feature index *)

and bexpr =
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bnot of bexpr
  | Blt of rexpr * rexpr
  | Bgt of rexpr * rexpr
  | Beq of rexpr * rexpr
  | Bconst of bool
  | Barg of int                      (* Boolean feature index *)

(* A genome is either a real-valued priority function (hyperblock formation,
   register allocation) or a Boolean-valued one (data prefetching). *)
type genome =
  | Real of rexpr
  | Bool of bexpr

(* --- Size and depth --------------------------------------------------- *)

let rec size_r = function
  | Radd (a, b) | Rsub (a, b) | Rmul (a, b) | Rdiv (a, b) ->
    1 + size_r a + size_r b
  | Rsqrt a -> 1 + size_r a
  | Rtern (c, a, b) | Rcmul (c, a, b) -> 1 + size_b c + size_r a + size_r b
  | Rconst _ | Rarg _ -> 1

and size_b = function
  | Band (a, b) | Bor (a, b) -> 1 + size_b a + size_b b
  | Bnot a -> 1 + size_b a
  | Blt (a, b) | Bgt (a, b) | Beq (a, b) -> 1 + size_r a + size_r b
  | Bconst _ | Barg _ -> 1

let rec depth_r = function
  | Radd (a, b) | Rsub (a, b) | Rmul (a, b) | Rdiv (a, b) ->
    1 + max (depth_r a) (depth_r b)
  | Rsqrt a -> 1 + depth_r a
  | Rtern (c, a, b) | Rcmul (c, a, b) ->
    1 + max (depth_b c) (max (depth_r a) (depth_r b))
  | Rconst _ | Rarg _ -> 1

and depth_b = function
  | Band (a, b) | Bor (a, b) -> 1 + max (depth_b a) (depth_b b)
  | Bnot a -> 1 + depth_b a
  | Blt (a, b) | Bgt (a, b) | Beq (a, b) -> 1 + max (depth_r a) (depth_r b)
  | Bconst _ | Barg _ -> 1

let size = function Real e -> size_r e | Bool e -> size_b e
let depth = function Real e -> depth_r e | Bool e -> depth_b e

(* --- Feature occurrence ------------------------------------------------ *)

let rec fold_features_r ~real ~bool acc = function
  | Radd (a, b) | Rsub (a, b) | Rmul (a, b) | Rdiv (a, b) ->
    fold_features_r ~real ~bool (fold_features_r ~real ~bool acc a) b
  | Rsqrt a -> fold_features_r ~real ~bool acc a
  | Rtern (c, a, b) | Rcmul (c, a, b) ->
    let acc = fold_features_b ~real ~bool acc c in
    fold_features_r ~real ~bool (fold_features_r ~real ~bool acc a) b
  | Rconst _ -> acc
  | Rarg i -> real acc i

and fold_features_b ~real ~bool acc = function
  | Band (a, b) | Bor (a, b) ->
    fold_features_b ~real ~bool (fold_features_b ~real ~bool acc a) b
  | Bnot a -> fold_features_b ~real ~bool acc a
  | Blt (a, b) | Bgt (a, b) | Beq (a, b) ->
    fold_features_r ~real ~bool (fold_features_r ~real ~bool acc a) b
  | Bconst _ -> acc
  | Barg i -> bool acc i

(* Indices of real and Boolean features referenced by a genome. *)
let features genome =
  let real acc i = (`Real i) :: acc and bool acc i = (`Bool i) :: acc in
  let occs =
    match genome with
    | Real e -> fold_features_r ~real ~bool [] e
    | Bool e -> fold_features_b ~real ~bool [] e
  in
  List.sort_uniq compare occs

(* --- Structural equality (used for memoization keys via printing, and for
   detecting inbreeding in tests) ---------------------------------------- *)

let equal_genome (a : genome) (b : genome) = a = b
