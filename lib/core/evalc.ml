(* Compiled genome evaluation: one pass over the tree flattens it into a
   flat, register-coded bytecode; running the program is a tight loop over
   an int array with no constructor dispatch, no recursion, and no
   allocation per point.

   Semantics are exactly [Eval]'s documented contract — protected
   division with the [div_epsilon] rule, sqrt of the absolute value,
   non-finite collapse to 0 — checked bit-for-bit by the test suite and
   the [compiled_vs_walk] fuzz oracle.  [Rtern]/[Rcmul]/[Band]/[Bor]
   compile to conditional jumps, so the bytecode short-circuits exactly
   as the tree-walker does: the same subtrees are evaluated, the same
   environment slots are read, and an out-of-range feature index (the
   only effectful failure either evaluator can produce) raises
   [Invalid_argument] from the same array accesses in both.

   Instruction encoding: fixed stride of 5 ints per instruction —
   [op; dst; a; b; c] — with unused operand slots 0.  Register files are
   split by sort: real results go to float registers, Boolean results to
   bool registers, one fresh register per tree node (genomes are
   parsimony-pressured small, so no register reuse is needed); the two
   arms of a conditional both write the node's destination register
   through a [mov].  Constants live in a float pool so the code stream
   stays a flat int array; jump targets are absolute code-array offsets,
   backpatched when the arm lengths are known. *)

let div_epsilon = Eval.div_epsilon

(* Two code streams are compiled from the same tree:

   - the scalar stream ([code]), with conditional jumps, drives the
     per-env entry points and mirrors the walker's evaluation order
     exactly — same subtrees evaluated, same env slots read;

   - the strict stream ([strict]), straight-line with select
     instructions instead of jumps, drives {!run_batch}: the batch
     engine executes one instruction across the whole chunk of
     environments at a time, so operator dispatch is paid once per
     instruction per chunk instead of once per node per point, and the
     inner loops are tight float-array walks.  Repeated [arg]/[const]
     leaves are deduplicated (they are pure reads), which GP trees —
     small feature sets, parsimony pressure — repeat constantly.
     Strictness cannot change a value: every operation is total, pure
     and deterministic, so both arms of a select evaluate to the same
     floats the walker would have produced had it taken them. *)

(* Opcodes.  Real-destination first, then Boolean-destination, then
   control flow — [exec] dispatches on those three bands. *)
let op_add = 0 (* dst <- protect (f a +. f b) *)
let op_sub = 1
let op_mul = 2
let op_div = 3 (* protected: |f b| < eps yields f a *)
let op_sqrt = 4 (* dst <- protect (sqrt |f a|) *)
let op_const = 5 (* dst <- consts.(a) *)
let op_arg = 6 (* dst <- env.real_values.(a) *)
let op_mov = 7 (* dst <- f a *)
let op_not = 8 (* dst <- not (p a) *)
let op_lt = 9 (* dst <- f a < f b *)
let op_gt = 10
let op_eq = 11 (* dst <- |f a -. f b| < eps *)
let op_bconst = 12 (* dst <- (a <> 0) *)
let op_barg = 13 (* dst <- env.bool_values.(a) *)
let op_bmov = 14 (* dst <- p a *)
let op_jf = 15 (* if not (p a) then pc <- b *)
let op_jt = 16 (* if p a then pc <- b *)
let op_jmp = 17 (* pc <- a *)

(* Strict-stream opcodes (separate namespace: these appear only in
   [strict.scode]).  No jumps and no movs — conditionals become select
   instructions over already-computed operands. *)
let s_add = 0
let s_sub = 1
let s_mul = 2
let s_div = 3
let s_sqrt = 4
let s_const = 5
let s_arg = 6
let s_tern = 7 (* dst <- if p c then f a else f b *)
let s_cmul = 8 (* dst <- if p c then protect (f a *. f b) else f b *)
let s_and = 9
let s_or = 10
let s_not = 11
let s_lt = 12
let s_gt = 13
let s_eq = 14
let s_bconst = 15
let s_barg = 16

type strict = {
  scode : int array; (* stride 5: op dst a b c, strict opcodes *)
  sconsts : float array;
  s_nf : int;
  s_nb : int;
  s_root : int;
}

type t = {
  code : int array;
  consts : float array;
  n_fregs : int;
  n_bregs : int;
  root : int; (* register holding the final result *)
  sort : [ `Real | `Bool ];
  strict : strict; (* batch engine's straight-line form of the same tree *)
}

let sort t = t.sort
let n_instrs t = Array.length t.code / 5

(* --- Compilation --------------------------------------------------------- *)

type builder = {
  mutable code : int array; (* growable, 5 ints per instruction *)
  mutable len : int; (* ints used *)
  mutable consts_rev : float list;
  mutable n_consts : int;
  mutable n_fregs : int;
  mutable n_bregs : int;
}

let fresh_f b =
  let r = b.n_fregs in
  b.n_fregs <- r + 1;
  r

let fresh_b b =
  let r = b.n_bregs in
  b.n_bregs <- r + 1;
  r

let intern_const b k =
  let i = b.n_consts in
  b.consts_rev <- k :: b.consts_rev;
  b.n_consts <- i + 1;
  i

let emit b op dst x y z =
  if b.len + 5 > Array.length b.code then begin
    let grown = Array.make (2 * Array.length b.code) 0 in
    Array.blit b.code 0 grown 0 b.len;
    b.code <- grown
  end;
  let k = b.len in
  b.code.(k) <- op;
  b.code.(k + 1) <- dst;
  b.code.(k + 2) <- x;
  b.code.(k + 3) <- y;
  b.code.(k + 4) <- z;
  b.len <- k + 5

let here b = b.len

(* Emit a jump whose target is not known yet; returns the offset of the
   operand slot to [patch] once it is. *)
let emit_jcond b op pred =
  emit b op 0 pred 0 0;
  b.len - 2

let emit_jmp b =
  emit b op_jmp 0 0 0 0;
  b.len - 3

let patch b slot target = b.code.(slot) <- target

let rec creal b (e : Expr.rexpr) : int =
  match e with
  | Expr.Radd (x, y) -> bin_r b op_add x y
  | Expr.Rsub (x, y) -> bin_r b op_sub x y
  | Expr.Rmul (x, y) -> bin_r b op_mul x y
  | Expr.Rdiv (x, y) -> bin_r b op_div x y
  | Expr.Rsqrt x ->
    let a = creal b x in
    let d = fresh_f b in
    emit b op_sqrt d a 0 0;
    d
  | Expr.Rtern (c, x, y) ->
    (* p ? x : y — only the taken arm runs, as in the walker *)
    let p = cbool b c in
    let d = fresh_f b in
    let jelse = emit_jcond b op_jf p in
    let rx = creal b x in
    emit b op_mov d rx 0 0;
    let jend = emit_jmp b in
    patch b jelse (here b);
    let ry = creal b y in
    emit b op_mov d ry 0 0;
    patch b jend (here b);
    d
  | Expr.Rcmul (c, x, y) ->
    (* Table 1: Real1 * Real2 if Bool1, else Real2; Real1 only runs when
       the predicate holds *)
    let p = cbool b c in
    let ry = creal b y in
    let d = fresh_f b in
    let jelse = emit_jcond b op_jf p in
    let rx = creal b x in
    emit b op_mul d rx ry 0;
    let jend = emit_jmp b in
    patch b jelse (here b);
    emit b op_mov d ry 0 0;
    patch b jend (here b);
    d
  | Expr.Rconst k ->
    let i = intern_const b k in
    let d = fresh_f b in
    emit b op_const d i 0 0;
    d
  | Expr.Rarg i ->
    let d = fresh_f b in
    emit b op_arg d i 0 0;
    d

and bin_r b op x y =
  let a = creal b x in
  let a' = creal b y in
  let d = fresh_f b in
  emit b op d a a' 0;
  d

and cbool b (e : Expr.bexpr) : int =
  match e with
  | Expr.Band (x, y) ->
    (* short-circuit: y runs only when x held *)
    let px = cbool b x in
    let d = fresh_b b in
    emit b op_bmov d px 0 0;
    let jend = emit_jcond b op_jf px in
    let py = cbool b y in
    emit b op_bmov d py 0 0;
    patch b jend (here b);
    d
  | Expr.Bor (x, y) ->
    let px = cbool b x in
    let d = fresh_b b in
    emit b op_bmov d px 0 0;
    let jend = emit_jcond b op_jt px in
    let py = cbool b y in
    emit b op_bmov d py 0 0;
    patch b jend (here b);
    d
  | Expr.Bnot x ->
    let a = cbool b x in
    let d = fresh_b b in
    emit b op_not d a 0 0;
    d
  | Expr.Blt (x, y) -> bin_b b op_lt (creal b x) (creal b y)
  | Expr.Bgt (x, y) -> bin_b b op_gt (creal b x) (creal b y)
  | Expr.Beq (x, y) -> bin_b b op_eq (creal b x) (creal b y)
  | Expr.Bconst k ->
    let d = fresh_b b in
    emit b op_bconst d (if k then 1 else 0) 0 0;
    d
  | Expr.Barg i ->
    let d = fresh_b b in
    emit b op_barg d i 0 0;
    d

and bin_b b op a a' =
  let d = fresh_b b in
  emit b op d a a' 0;
  d

let new_builder () =
  {
    code = Array.make 40 0;
    len = 0;
    consts_rev = [];
    n_consts = 0;
    n_fregs = 0;
    n_bregs = 0;
  }

(* --- Strict-stream compilation ------------------------------------------- *)

(* Same tree, straight-line code: conditionals become selects over
   operands that are always computed (safe: every operation is total and
   pure, so an untaken arm's value is well-defined and unobservable).
   Repeated [arg]/[const] leaves are memoised into a single register —
   pure reads, and GP trees repeat them constantly — so the batch engine
   gathers each distinct feature once per chunk rather than once per
   occurrence. *)
type sctx = {
  sb : builder;
  const_regs : (int64, int) Hashtbl.t;
  arg_regs : (int, int) Hashtbl.t;
  barg_regs : (int, int) Hashtbl.t;
  mutable btrue_reg : int; (* -1 until first use *)
  mutable bfalse_reg : int;
}

let cached tbl key make =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = make () in
    Hashtbl.add tbl key r;
    r

let rec sreal c (e : Expr.rexpr) : int =
  let b = c.sb in
  match e with
  | Expr.Radd (x, y) -> sbin_r c s_add x y
  | Expr.Rsub (x, y) -> sbin_r c s_sub x y
  | Expr.Rmul (x, y) -> sbin_r c s_mul x y
  | Expr.Rdiv (x, y) -> sbin_r c s_div x y
  | Expr.Rsqrt x ->
    let a = sreal c x in
    let d = fresh_f b in
    emit b s_sqrt d a 0 0;
    d
  | Expr.Rtern (p, x, y) ->
    let rp = sbool c p in
    let rx = sreal c x in
    let ry = sreal c y in
    let d = fresh_f b in
    emit b s_tern d rx ry rp;
    d
  | Expr.Rcmul (p, x, y) ->
    let rp = sbool c p in
    let rx = sreal c x in
    let ry = sreal c y in
    let d = fresh_f b in
    emit b s_cmul d rx ry rp;
    d
  | Expr.Rconst k ->
    cached c.const_regs (Int64.bits_of_float k) (fun () ->
        let i = intern_const b k in
        let d = fresh_f b in
        emit b s_const d i 0 0;
        d)
  | Expr.Rarg i ->
    cached c.arg_regs i (fun () ->
        let d = fresh_f b in
        emit b s_arg d i 0 0;
        d)

and sbin_r c op x y =
  let a = sreal c x in
  let a' = sreal c y in
  let d = fresh_f c.sb in
  emit c.sb op d a a' 0;
  d

and sbool c (e : Expr.bexpr) : int =
  let b = c.sb in
  match e with
  | Expr.Band (x, y) -> sbin_b c s_and (sbool c x) (sbool c y)
  | Expr.Bor (x, y) -> sbin_b c s_or (sbool c x) (sbool c y)
  | Expr.Bnot x ->
    let a = sbool c x in
    let d = fresh_b b in
    emit b s_not d a 0 0;
    d
  | Expr.Blt (x, y) -> sbin_b c s_lt (sreal c x) (sreal c y)
  | Expr.Bgt (x, y) -> sbin_b c s_gt (sreal c x) (sreal c y)
  | Expr.Beq (x, y) -> sbin_b c s_eq (sreal c x) (sreal c y)
  | Expr.Bconst true ->
    if c.btrue_reg < 0 then begin
      let d = fresh_b b in
      emit b s_bconst d 1 0 0;
      c.btrue_reg <- d
    end;
    c.btrue_reg
  | Expr.Bconst false ->
    if c.bfalse_reg < 0 then begin
      let d = fresh_b b in
      emit b s_bconst d 0 0 0;
      c.bfalse_reg <- d
    end;
    c.bfalse_reg
  | Expr.Barg i ->
    cached c.barg_regs i (fun () ->
        let d = fresh_b b in
        emit b s_barg d i 0 0;
        d)

and sbin_b c op a a' =
  let d = fresh_b c.sb in
  emit c.sb op d a a' 0;
  d

let new_sctx () =
  {
    sb = new_builder ();
    const_regs = Hashtbl.create 16;
    arg_regs = Hashtbl.create 16;
    barg_regs = Hashtbl.create 8;
    btrue_reg = -1;
    bfalse_reg = -1;
  }

(* Operand shape of each strict opcode, for the reallocation pass below:
   which slots hold float registers, bool registers, or immediates
   (constant-pool / environment indices, left untouched). *)
let s_shape op =
  (* (dst_is_float, a, b, c) with 'f'/'b' = register of that sort,
     '-' = immediate or unused *)
  match op with
  | 0 | 1 | 2 | 3 (* add..div *) -> (true, 'f', 'f', '-')
  | 4 (* sqrt *) -> (true, 'f', '-', '-')
  | 5 | 6 (* const, arg *) -> (true, '-', '-', '-')
  | 7 | 8 (* tern, cmul *) -> (true, 'f', 'f', 'b')
  | 9 | 10 (* and, or *) -> (false, 'b', 'b', '-')
  | 11 (* not *) -> (false, 'b', '-', '-')
  | 12 | 13 | 14 (* lt, gt, eq *) -> (false, 'f', 'f', '-')
  | _ (* bconst, barg *) -> (false, '-', '-', '-')

(* Linear-scan register reuse.  The builder emits one fresh virtual
   register per node, which keeps compilation trivial but makes the
   batch engine's register matrix grow with tree size — large enough to
   fall out of L1 on deep genomes, and the post-order left operand is
   then a guaranteed cache miss.  Registers are single-assignment and
   the code is in dependency order, so a forward scan with a free list
   (recycling a register after its last read) shrinks the live set to
   roughly the tree depth plus the deduplicated leaves.  Reusing an
   operand's register as the destination is safe in both engines: every
   instruction reads its operands at lane [j] before writing lane [j]. *)
let realloc ~(sort : [ `Real | `Bool ]) (s : strict) : strict =
  let code = s.scode in
  let ni = Array.length code / 5 in
  let last_f = Array.make (max 1 s.s_nf) (-1) in
  let last_b = Array.make (max 1 s.s_nb) (-1) in
  for t = 0 to ni - 1 do
    let k = 5 * t in
    let _, ka, kb, kc = s_shape code.(k) in
    let touch kind v =
      match kind with
      | 'f' -> last_f.(v) <- t
      | 'b' -> last_b.(v) <- t
      | _ -> ()
    in
    touch ka code.(k + 2);
    touch kb code.(k + 3);
    touch kc code.(k + 4)
  done;
  (* the result row is read after the last instruction *)
  (match sort with
  | `Real -> last_f.(s.s_root) <- ni
  | `Bool -> last_b.(s.s_root) <- ni);
  let out = Array.copy code in
  let map_f = Array.make (max 1 s.s_nf) (-1) in
  let map_b = Array.make (max 1 s.s_nb) (-1) in
  let free_f = ref [] and free_b = ref [] in
  let nf = ref 0 and nb = ref 0 in
  let alloc free n =
    match !free with
    | r :: tl ->
      free := tl;
      r
    | [] ->
      let r = !n in
      incr n;
      r
  in
  for t = 0 to ni - 1 do
    let k = 5 * t in
    let dst_f, ka, kb, kc = s_shape code.(k) in
    let read slot kind =
      let v = code.(k + slot) in
      match kind with
      | 'f' -> out.(k + slot) <- map_f.(v)
      | 'b' -> out.(k + slot) <- map_b.(v)
      | _ -> ()
    in
    read 2 ka;
    read 3 kb;
    read 4 kc;
    (* Free operands whose last read is this instruction — each virtual
       register at most once, even if it appears in two slots. *)
    let freed = ref [] in
    let release slot kind =
      let v = code.(k + slot) in
      let dead last map free =
        if last.(v) = t && not (List.mem (kind, v) !freed) then begin
          freed := (kind, v) :: !freed;
          free := map.(v) :: !free
        end
      in
      match kind with
      | 'f' -> dead last_f map_f free_f
      | 'b' -> dead last_b map_b free_b
      | _ -> ()
    in
    release 2 ka;
    release 3 kb;
    release 4 kc;
    let v = code.(k + 1) in
    if dst_f then begin
      map_f.(v) <- alloc free_f nf;
      out.(k + 1) <- map_f.(v)
    end
    else begin
      map_b.(v) <- alloc free_b nb;
      out.(k + 1) <- map_b.(v)
    end
  done;
  {
    scode = out;
    sconsts = s.sconsts;
    s_nf = max 1 !nf;
    s_nb = max 1 !nb;
    s_root =
      (match sort with `Real -> map_f.(s.s_root) | `Bool -> map_b.(s.s_root));
  }

let finish_strict c ~root ~sort =
  let b = c.sb in
  realloc ~sort
    {
      scode = Array.sub b.code 0 b.len;
      sconsts = Array.of_list (List.rev b.consts_rev);
      s_nf = b.n_fregs;
      s_nb = b.n_bregs;
      s_root = root;
    }

let finish b ~root ~sort ~strict =
  {
    code = Array.sub b.code 0 b.len;
    consts = Array.of_list (List.rev b.consts_rev);
    n_fregs = b.n_fregs;
    n_bregs = b.n_bregs;
    root;
    sort;
    strict;
  }

let compile_real (e : Expr.rexpr) : t =
  let c = new_sctx () in
  let strict = finish_strict c ~root:(sreal c e) ~sort:`Real in
  let b = new_builder () in
  let root = creal b e in
  finish b ~root ~sort:`Real ~strict

let compile_bool (e : Expr.bexpr) : t =
  let c = new_sctx () in
  let strict = finish_strict c ~root:(sbool c e) ~sort:`Bool in
  let b = new_builder () in
  let root = cbool b e in
  finish b ~root ~sort:`Bool ~strict

let compile = function
  | Expr.Real e -> compile_real e
  | Expr.Bool e -> compile_bool e

(* --- Execution ----------------------------------------------------------- *)

(* Internal register, code and jump-target indices are in bounds by
   construction, so those accesses are unsafe; environment reads stay
   bounds-checked so an out-of-contract feature index raises exactly as
   the tree-walker's [env.real_values.(i)] would. *)
let exec (p : t) (fregs : float array) (bregs : bool array)
    (env : Feature_set.env) : unit =
  let code = p.code in
  let consts = p.consts in
  let reals = env.Feature_set.real_values in
  let bools = env.Feature_set.bool_values in
  let n = Array.length code in
  (* [v -. v = 0.] is [Float.is_finite] spelled as a compare — see the
     note above [vexec]. *)
  let pc = ref 0 in
  while !pc < n do
    let k = !pc in
    let op = Array.unsafe_get code k in
    let dst = Array.unsafe_get code (k + 1) in
    let a = Array.unsafe_get code (k + 2) in
    let b = Array.unsafe_get code (k + 3) in
    pc := k + 5;
    if op <= op_mov then
      Array.unsafe_set fregs dst
        (match op with
        | 0 (* add *) ->
          let v = Array.unsafe_get fregs a +. Array.unsafe_get fregs b in
          if v -. v = 0. then v else 0.
        | 1 (* sub *) ->
          let v = Array.unsafe_get fregs a -. Array.unsafe_get fregs b in
          if v -. v = 0. then v else 0.
        | 2 (* mul *) ->
          let v = Array.unsafe_get fregs a *. Array.unsafe_get fregs b in
          if v -. v = 0. then v else 0.
        | 3 (* div *) ->
          let x = Array.unsafe_get fregs a and y = Array.unsafe_get fregs b in
          if Float.abs y < div_epsilon then x
          else
            let v = x /. y in
            if v -. v = 0. then v else 0.
        | 4 (* sqrt *) ->
          let v = sqrt (Float.abs (Array.unsafe_get fregs a)) in
          if v -. v = 0. then v else 0.
        | 5 (* const *) -> Array.unsafe_get consts a
        | 6 (* arg *) -> reals.(a)
        | _ (* mov *) -> Array.unsafe_get fregs a)
    else if op <= op_bmov then
      Array.unsafe_set bregs dst
        (match op with
        | 8 (* not *) -> not (Array.unsafe_get bregs a)
        | 9 (* lt *) -> Array.unsafe_get fregs a < Array.unsafe_get fregs b
        | 10 (* gt *) -> Array.unsafe_get fregs a > Array.unsafe_get fregs b
        | 11 (* eq *) ->
          Float.abs (Array.unsafe_get fregs a -. Array.unsafe_get fregs b)
          < div_epsilon
        | 12 (* bconst *) -> a <> 0
        | 13 (* barg *) -> bools.(a)
        | _ (* bmov *) -> Array.unsafe_get bregs a)
    else
      match op with
      | 15 (* jf *) -> if not (Array.unsafe_get bregs a) then pc := b
      | 16 (* jt *) -> if Array.unsafe_get bregs a then pc := b
      | _ (* jmp *) -> pc := a
  done

let op_name = function
  | 0 -> "add"
  | 1 -> "sub"
  | 2 -> "mul"
  | 3 -> "div"
  | 4 -> "sqrt"
  | 5 -> "const"
  | 6 -> "arg"
  | 7 -> "mov"
  | 8 -> "not"
  | 9 -> "lt"
  | 10 -> "gt"
  | 11 -> "eq"
  | 12 -> "bconst"
  | 13 -> "barg"
  | 14 -> "bmov"
  | 15 -> "jf"
  | 16 -> "jt"
  | 17 -> "jmp"
  | n -> Printf.sprintf "?%d" n

let s_op_name = function
  | 0 -> "add"
  | 1 -> "sub"
  | 2 -> "mul"
  | 3 -> "div"
  | 4 -> "sqrt"
  | 5 -> "const"
  | 6 -> "arg"
  | 7 -> "tern"
  | 8 -> "cmul"
  | 9 -> "and"
  | 10 -> "or"
  | 11 -> "not"
  | 12 -> "lt"
  | 13 -> "gt"
  | 14 -> "eq"
  | 15 -> "bconst"
  | 16 -> "barg"
  | n -> Printf.sprintf "?%d" n

(* Human-readable listing, one instruction per line — for debugging and
   the DESIGN.md examples. *)
let disasm (p : t) : string =
  let buf = Buffer.create 256 in
  let listing name code consts nf nb root =
    let n = Array.length code in
    let k = ref 0 in
    Buffer.add_string buf (Printf.sprintf "%s:\n" (fst name));
    while !k < n do
      let i = !k in
      Buffer.add_string buf
        (Printf.sprintf "%4d: %-6s dst=%d a=%d b=%d c=%d\n" i
           ((snd name) code.(i))
           code.(i + 1)
           code.(i + 2)
           code.(i + 3)
           code.(i + 4));
      k := i + 5
    done;
    Buffer.add_string buf
      (Printf.sprintf "consts=[%s] fregs=%d bregs=%d root=%d\n"
         (String.concat ";"
            (Array.to_list (Array.map (Printf.sprintf "%g") consts)))
         nf nb root)
  in
  listing ("scalar", op_name) p.code p.consts p.n_fregs p.n_bregs p.root;
  let s = p.strict in
  listing ("strict", s_op_name) s.scode s.sconsts s.s_nf s.s_nb s.s_root;
  Buffer.contents buf

let scratch (p : t) =
  (Array.make (max 1 p.n_fregs) 0.0, Array.make (max 1 p.n_bregs) false)

let run p env =
  let fregs, bregs = scratch p in
  exec p fregs bregs env;
  match p.sort with
  | `Real -> `Real fregs.(p.root)
  | `Bool -> `Bool bregs.(p.root)

let run_real p env =
  if p.sort <> `Real then invalid_arg "Evalc.run_real: boolean program";
  let fregs, bregs = scratch p in
  exec p fregs bregs env;
  fregs.(p.root)

let run_bool p env =
  if p.sort <> `Bool then invalid_arg "Evalc.run_bool: real program";
  let fregs, bregs = scratch p in
  exec p fregs bregs env;
  bregs.(p.root)

(* --- Batch execution ----------------------------------------------------- *)

(* One instruction across the whole chunk at a time: register files are
   laid out as [register * chunk_width] rows, so each opcode becomes a
   tight loop over contiguous float slices and the dispatch cost is paid
   once per instruction per chunk instead of once per node per point.
   Register/code indices are in bounds by construction (unsafe);
   environment reads stay bounds-checked, as in [exec]. *)
(* The inner loops write [Float.is_finite] out as [v -. v = 0.] — the
   same predicate (finite iff the subtraction is an exact 0; inf gives
   nan, nan stays nan), but a compare instruction instead of a function
   call, which matters here because the compiler is not flambda and
   would not inline the stdlib function into these loops. *)
let vexec (s : strict) (envs : Feature_set.env array) ~off ~m
    (f : float array) (bl : bool array) : unit =
  let code = s.scode in
  let consts = s.sconsts in
  let n = Array.length code in
  let k = ref 0 in
  while !k < n do
    let i = !k in
    let op = Array.unsafe_get code i in
    let db = Array.unsafe_get code (i + 1) * m in
    let a = Array.unsafe_get code (i + 2) in
    let b = Array.unsafe_get code (i + 3) in
    let c = Array.unsafe_get code (i + 4) in
    k := i + 5;
    match op with
    | 0 (* add *) ->
      (* the three frequent binops are unrolled 2x by hand: the compiler
         does not unroll, and loop control is a measurable share of a
         2-load/1-store body *)
      let ab = a * m and bb = b * m in
      let j = ref 0 in
      while !j + 1 < m do
        let i0 = !j and i1 = !j + 1 in
        let v0 = Array.unsafe_get f (ab + i0) +. Array.unsafe_get f (bb + i0) in
        let v1 = Array.unsafe_get f (ab + i1) +. Array.unsafe_get f (bb + i1) in
        Array.unsafe_set f (db + i0) (if v0 -. v0 = 0. then v0 else 0.);
        Array.unsafe_set f (db + i1) (if v1 -. v1 = 0. then v1 else 0.);
        j := !j + 2
      done;
      if !j < m then begin
        let i0 = !j in
        let v = Array.unsafe_get f (ab + i0) +. Array.unsafe_get f (bb + i0) in
        Array.unsafe_set f (db + i0) (if v -. v = 0. then v else 0.)
      end
    | 1 (* sub *) ->
      let ab = a * m and bb = b * m in
      let j = ref 0 in
      while !j + 1 < m do
        let i0 = !j and i1 = !j + 1 in
        let v0 = Array.unsafe_get f (ab + i0) -. Array.unsafe_get f (bb + i0) in
        let v1 = Array.unsafe_get f (ab + i1) -. Array.unsafe_get f (bb + i1) in
        Array.unsafe_set f (db + i0) (if v0 -. v0 = 0. then v0 else 0.);
        Array.unsafe_set f (db + i1) (if v1 -. v1 = 0. then v1 else 0.);
        j := !j + 2
      done;
      if !j < m then begin
        let i0 = !j in
        let v = Array.unsafe_get f (ab + i0) -. Array.unsafe_get f (bb + i0) in
        Array.unsafe_set f (db + i0) (if v -. v = 0. then v else 0.)
      end
    | 2 (* mul *) ->
      let ab = a * m and bb = b * m in
      let j = ref 0 in
      while !j + 1 < m do
        let i0 = !j and i1 = !j + 1 in
        let v0 = Array.unsafe_get f (ab + i0) *. Array.unsafe_get f (bb + i0) in
        let v1 = Array.unsafe_get f (ab + i1) *. Array.unsafe_get f (bb + i1) in
        Array.unsafe_set f (db + i0) (if v0 -. v0 = 0. then v0 else 0.);
        Array.unsafe_set f (db + i1) (if v1 -. v1 = 0. then v1 else 0.);
        j := !j + 2
      done;
      if !j < m then begin
        let i0 = !j in
        let v = Array.unsafe_get f (ab + i0) *. Array.unsafe_get f (bb + i0) in
        Array.unsafe_set f (db + i0) (if v -. v = 0. then v else 0.)
      end
    | 3 (* div *) ->
      let ab = a * m and bb = b * m in
      let j = ref 0 in
      while !j + 1 < m do
        let i0 = !j and i1 = !j + 1 in
        let x0 = Array.unsafe_get f (ab + i0)
        and y0 = Array.unsafe_get f (bb + i0)
        and x1 = Array.unsafe_get f (ab + i1)
        and y1 = Array.unsafe_get f (bb + i1) in
        Array.unsafe_set f (db + i0)
          (if Float.abs y0 < div_epsilon then x0
           else
             let v = x0 /. y0 in
             if v -. v = 0. then v else 0.);
        Array.unsafe_set f (db + i1)
          (if Float.abs y1 < div_epsilon then x1
           else
             let v = x1 /. y1 in
             if v -. v = 0. then v else 0.);
        j := !j + 2
      done;
      if !j < m then begin
        let i0 = !j in
        let x = Array.unsafe_get f (ab + i0)
        and y = Array.unsafe_get f (bb + i0) in
        Array.unsafe_set f (db + i0)
          (if Float.abs y < div_epsilon then x
           else
             let v = x /. y in
             if v -. v = 0. then v else 0.)
      end
    | 4 (* sqrt *) ->
      let ab = a * m in
      for j = 0 to m - 1 do
        let v = sqrt (Float.abs (Array.unsafe_get f (ab + j))) in
        Array.unsafe_set f (db + j) (if v -. v = 0. then v else 0.)
      done
    | 5 (* const *) ->
      let v = Array.unsafe_get consts a in
      for j = 0 to m - 1 do
        Array.unsafe_set f (db + j) v
      done
    | 6 (* arg *) ->
      for j = 0 to m - 1 do
        let env = Array.unsafe_get envs (off + j) in
        Array.unsafe_set f (db + j) env.Feature_set.real_values.(a)
      done
    | 7 (* tern *) ->
      let ab = a * m and bb = b * m and cb = c * m in
      for j = 0 to m - 1 do
        Array.unsafe_set f (db + j)
          (if Array.unsafe_get bl (cb + j) then Array.unsafe_get f (ab + j)
           else Array.unsafe_get f (bb + j))
      done
    | 8 (* cmul *) ->
      let ab = a * m and bb = b * m and cb = c * m in
      for j = 0 to m - 1 do
        let y = Array.unsafe_get f (bb + j) in
        Array.unsafe_set f (db + j)
          (if Array.unsafe_get bl (cb + j) then
             let v = Array.unsafe_get f (ab + j) *. y in
             if v -. v = 0. then v else 0.
           else y)
      done
    | 9 (* and *) ->
      let ab = a * m and bb = b * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j)
          (Array.unsafe_get bl (ab + j) && Array.unsafe_get bl (bb + j))
      done
    | 10 (* or *) ->
      let ab = a * m and bb = b * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j)
          (Array.unsafe_get bl (ab + j) || Array.unsafe_get bl (bb + j))
      done
    | 11 (* not *) ->
      let ab = a * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j) (not (Array.unsafe_get bl (ab + j)))
      done
    | 12 (* lt *) ->
      let ab = a * m and bb = b * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j)
          (Array.unsafe_get f (ab + j) < Array.unsafe_get f (bb + j))
      done
    | 13 (* gt *) ->
      let ab = a * m and bb = b * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j)
          (Array.unsafe_get f (ab + j) > Array.unsafe_get f (bb + j))
      done
    | 14 (* eq *) ->
      let ab = a * m and bb = b * m in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j)
          (Float.abs (Array.unsafe_get f (ab + j) -. Array.unsafe_get f (bb + j))
          < div_epsilon)
      done
    | 15 (* bconst *) ->
      let v = a <> 0 in
      for j = 0 to m - 1 do
        Array.unsafe_set bl (db + j) v
      done
    | 16 (* barg *) ->
      for j = 0 to m - 1 do
        let env = Array.unsafe_get envs (off + j) in
        Array.unsafe_set bl (db + j) env.Feature_set.bool_values.(a)
      done
    | _ -> assert false
  done

(* Chunked so the register matrix stays cache-sized no matter how large
   the batch is; after register reuse the live set is small, so wide
   chunks fit comfortably and amortise per-instruction dispatch. *)
let batch_chunk = 1024

let run_batch p envs =
  if p.sort <> `Real then invalid_arg "Evalc.run_batch: boolean program";
  let s = p.strict in
  let total = Array.length envs in
  let out = Array.create_float total in
  if total > 0 then begin
    let width = min batch_chunk total in
    (* uninitialised on purpose: every register row is written before it
       is read (the code is in dependency order), and [out] is fully
       overwritten below *)
    let f = Array.create_float (max 1 (s.s_nf * width)) in
    let bl = Array.make (max 1 (s.s_nb * width)) false in
    (* Cancellation safepoint per chunk: one check every [batch_chunk]
       environments keeps the cost invisible next to [vexec]. *)
    let tok = Cancel.current () in
    let off = ref 0 in
    while !off < total do
      Cancel.check tok;
      let m = min batch_chunk (total - !off) in
      vexec s envs ~off:!off ~m f bl;
      let rb = s.s_root * m in
      for j = 0 to m - 1 do
        out.(!off + j) <- Array.unsafe_get f (rb + j)
      done;
      off := !off + m
    done
  end;
  out

let run_batch_bool p envs =
  if p.sort <> `Bool then invalid_arg "Evalc.run_batch_bool: real program";
  let s = p.strict in
  let total = Array.length envs in
  let out = Array.make total false in
  if total > 0 then begin
    let width = min batch_chunk total in
    let f = Array.create_float (max 1 (s.s_nf * width)) in
    let bl = Array.make (max 1 (s.s_nb * width)) false in
    let tok = Cancel.current () in
    let off = ref 0 in
    while !off < total do
      Cancel.check tok;
      let m = min batch_chunk (total - !off) in
      vexec s envs ~off:!off ~m f bl;
      let rb = s.s_root * m in
      for j = 0 to m - 1 do
        out.(!off + j) <- Array.unsafe_get bl (rb + j)
      done;
      off := !off + m
    done
  end;
  out

let real_fn (e : Expr.rexpr) : Feature_set.env -> float =
  let p = compile_real e in
  let fregs, bregs = scratch p in
  let root = p.root in
  fun env ->
    (* Call-grained safepoint: these closures run once per heuristic
       decision inside loops we do not own (hyperblock formation). *)
    Cancel.tick ();
    exec p fregs bregs env;
    Array.unsafe_get fregs root

let bool_fn (e : Expr.bexpr) : Feature_set.env -> bool =
  let p = compile_bool e in
  let fregs, bregs = scratch p in
  let root = p.root in
  fun env ->
    Cancel.tick ();
    exec p fregs bregs env;
    Array.unsafe_get bregs root
