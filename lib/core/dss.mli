(** Dynamic subset selection [Gathercole 98]: the technique the paper uses
    to train general-purpose priority functions over many benchmarks
    without evaluating every expression on every benchmark.

    Each training case carries a difficulty (how badly the population did
    when the case was last selected) and an age (generations since last
    selected); per-generation subsets are drawn by weighted sampling
    without replacement with weight [difficulty^d + age^a]. *)

type t

val create :
  ?difficulty_exp:float -> ?age_exp:float -> n_cases:int ->
  subset_size:int -> unit -> t
(** @raise Invalid_argument if [subset_size] is out of range. *)

val weight : t -> int -> float
(** Current selection weight of a case (difficulty and age terms). *)

val select : t -> Random.State.t -> int list
(** A subset of [subset_size] distinct case indices. *)

val update : t -> subset:int list -> failure_rate:(int -> float) -> unit
(** After a generation: cases in [subset] take difficulty
    [failure_rate i] (fraction of evaluated individuals that did not beat
    the baseline, floored so solved cases stay selectable) and age 1;
    all other cases age by one generation. *)
