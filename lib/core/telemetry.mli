(** A zero-dependency metrics and tracing core for the evaluation stack.

    The GP loop spends nearly all its wall clock compiling and simulating
    candidates; this module is the substrate every layer reports into so a
    run can answer "where did the time go?" without a profiler: wall-clock
    {!span}s, {!Counter}s, {!Histogram}s with exact percentiles, a
    process-wide registry of named metrics, and a pluggable {!sink} that
    writes one JSON object per line (JSONL).

    Telemetry is {e off by default}: with no sink installed, {!enabled} is
    [false] and every instrumentation entry point ({!incr}, {!observe},
    {!span}, {!emit}) returns immediately without reading the clock,
    touching the registry, or allocating — the instrumented code paths are
    bit-identical to uninstrumented ones.  Instrumentation never draws
    from any [Random] state, so enabling telemetry cannot perturb an
    evolution run.

    Forked workers ({!Parmap}) drop the inherited sink immediately after
    [fork], so child-side instrumentation can never interleave torn lines
    into the parent's stream. *)

(** {1 JSON} *)

(** A minimal JSON document.  Non-finite floats serialize as [null]
    (JSON has no representation for them). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact single-line rendering (no trailing newline). *)

val json_of_string : string -> (json, string) result
(** Parse one JSON document; [Error msg] on malformed input.  Together
    with {!json_to_string} this round-trips every value this module can
    emit (used by the schema tests and the bench-report validator). *)

val member : string -> json -> json option
(** [member k (Obj ...)] is the value bound to [k], if any; [None] on
    non-objects. *)

(** {1 Sinks} *)

(** A record destination.  [write] receives one complete record; [close]
    flushes and releases any underlying channel. *)
type sink = { write : json -> unit; close : unit -> unit }

val jsonl_sink : string -> sink
(** A sink appending one line per record to the named file (created if
    missing).  Write failures degrade to silence — telemetry must never
    take a run down. *)

val memory_sink : unit -> sink * (unit -> json list)
(** An in-memory sink plus an accessor returning every record written so
    far, oldest first (for tests). *)

val set_sink : sink option -> unit
(** Install or remove the process sink.  Installing closes any previous
    sink; [set_sink None] closes and disables.  Also resets the registry
    and the record clock when a sink is installed, so each run's [ts]
    starts near 0. *)

val enabled : unit -> bool
(** Whether a sink is installed and the calling domain is not suppressed.
    Every instrumentation entry point is a no-op when this is [false]. *)

val suppress_in_domain : bool -> unit
(** Suppress (or restore) all instrumentation for the calling domain
    only.  The {!Parmap} domains backend suppresses its worker domains —
    the shared-memory analogue of a forked worker dropping the inherited
    sink — which also keeps the registry single-domain and lock-free. *)

val set_trace : bool -> unit
(** When true (and a sink is installed), every {!span} additionally emits
    a [kind = "span"] record with its start time and duration.  Off by
    default; spans always feed their named histogram either way. *)

(** {1 Metrics} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
end

(** A streaming histogram with exact percentiles: samples are kept (as a
    growing float array) and sorted on demand, which is fine at the
    volumes one run produces (one sample per task / span). *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** 0 when empty. *)

  val min : t -> float
  val max : t -> float
  (** 0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 100], by linear interpolation
      between closest ranks; 0 when empty. *)

  val to_json : t -> json
  (** [{count, sum, mean, min, max, p50, p95}]. *)
end

(** {1 Registry}

    A process-wide table of named metrics.  Names are interned: two
    lookups of the same name return the same metric.  The registry is
    reset whenever a sink is installed. *)

val counter : string -> Counter.t
val histogram : string -> Histogram.t

val registry_json : unit -> json
(** Snapshot of every named metric: [{counters: {...}, histograms:
    {...}}]. *)

val reset : unit -> unit
(** Drop every named metric (counters and histograms). *)

(** {1 Instrumentation entry points}

    All of these are guarded no-ops when {!enabled} is [false]. *)

val now_s : unit -> float
(** Seconds since the record clock's epoch (sink installation, or process
    start).  Monotone non-decreasing under normal clock behaviour; used
    as the [ts] stamp of every emitted record. *)

val incr : ?by:int -> string -> unit
(** Bump the named registry counter. *)

val observe : string -> float -> unit
(** Add a sample to the named registry histogram. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording its wall-clock duration into the
    [name] histogram; with {!set_trace} on it also emits a
    [kind = "span"] record.  When disabled it is exactly [f ()].
    Exceptions propagate; the duration of a raising [f] is not
    recorded. *)

val emit : kind:string -> (string * json) list -> unit
(** Write one record to the sink: the given fields prefixed with
    [kind] and a [ts] stamp ({!now_s}). *)
