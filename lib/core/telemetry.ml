(* Zero-dependency metrics/tracing core.  See telemetry.mli for the
   contract; the load-bearing property is that with no sink installed
   every entry point returns before reading the clock or touching the
   registry, so disabled telemetry is a true no-op. *)

(* --- JSON ---------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* %.17g round-trips doubles exactly; strip to a JSON number (no
         bare ".5", no "inf"). *)
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string buf s
    end
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write_json buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write_json buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  write_json buf j;
  Buffer.contents buf

(* A small recursive-descent parser: enough JSON to read back anything
   [json_to_string] produces (and ordinary hand-written documents).  Used
   by the round-trip tests and the bench-report schema validator. *)
exception Parse_fail of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Encode as UTF-8; surrogate pairs are not produced by our
             writer and are passed through as replacement chars. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- Metrics ------------------------------------------------------------- *)

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr ?(by = 1) t = t.n <- t.n + by
  let value t = t.n
end

module Histogram = struct
  type t = {
    mutable samples : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { samples = [||]; len = 0; sorted = false }

  let add t v =
    if t.len = Array.length t.samples then begin
      let cap = Stdlib.max 64 (2 * t.len) in
      let grown = Array.make cap 0.0 in
      Array.blit t.samples 0 grown 0 t.len;
      t.samples <- grown
    end;
    t.samples.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let sum t =
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      acc := !acc +. t.samples.(i)
    done;
    !acc

  let mean t = if t.len = 0 then 0.0 else sum t /. float_of_int t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.len in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.len;
      t.sorted <- true
    end

  let min t =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      t.samples.(0)
    end

  let max t =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      t.samples.(t.len - 1)
    end

  (* Linear interpolation between closest ranks (the "C = 1" textbook
     variant): p50 of [1;2;3;4] is 2.5, p100 is the max. *)
  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then t.samples.(lo)
      else
        let frac = rank -. float_of_int lo in
        (t.samples.(lo) *. (1.0 -. frac)) +. (t.samples.(hi) *. frac)
    end

  let to_json t =
    Obj
      [
        ("count", Int (count t));
        ("sum", Float (sum t));
        ("mean", Float (mean t));
        ("min", Float (min t));
        ("max", Float (max t));
        ("p50", Float (percentile t 50.0));
        ("p95", Float (percentile t 95.0));
      ]
end

(* --- Registry ------------------------------------------------------------ *)

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 32
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = Counter.create () in
    Hashtbl.replace counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace histograms name h;
    h

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let registry_json () =
  Obj
    [
      ("counters", Obj (sorted_bindings counters (fun c -> Int (Counter.value c))));
      ("histograms", Obj (sorted_bindings histograms Histogram.to_json));
    ]

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset histograms

(* --- Sinks --------------------------------------------------------------- *)

type sink = { write : json -> unit; close : unit -> unit }

let jsonl_sink path =
  match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
  | exception Sys_error _ -> { write = (fun _ -> ()); close = (fun () -> ()) }
  | oc ->
    let closed = ref false in
    {
      write =
        (fun j ->
          if not !closed then begin
            try
              output_string oc (json_to_string j);
              output_char oc '\n';
              flush oc
            with Sys_error _ -> ()
          end);
      close =
        (fun () ->
          if not !closed then begin
            closed := true;
            try close_out oc with Sys_error _ -> ()
          end);
    }

let memory_sink () =
  let records = ref [] in
  ( {
      write = (fun j -> records := j :: !records);
      close = (fun () -> ());
    },
    fun () -> List.rev !records )

let current_sink : sink option ref = ref None
let tracing = ref false
let epoch = ref (Unix.gettimeofday ())

let set_sink s =
  (match !current_sink with Some old -> old.close () | None -> ());
  current_sink := s;
  if s <> None then begin
    reset ();
    epoch := Unix.gettimeofday ()
  end

(* Worker domains of the [Parmap] domains backend suppress telemetry the
   way forked workers drop the inherited sink: domain-locally, so the
   registry Hashtbls and the sink are only ever touched from the main
   domain and need no locking. *)
let suppressed_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let suppress_in_domain b = Domain.DLS.set suppressed_key b
let suppressed () = Domain.DLS.get suppressed_key

let enabled () = !current_sink <> None && not (suppressed ())
let set_trace b = tracing := b

(* --- Entry points -------------------------------------------------------- *)

let now_s () = Unix.gettimeofday () -. !epoch

let incr ?by name = if enabled () then Counter.incr ?by (counter name)

let observe name v = if enabled () then Histogram.add (histogram name) v

let emit ~kind fields =
  match if suppressed () then None else !current_sink with
  | None -> ()
  | Some sink ->
    sink.write
      (Obj (("kind", String kind) :: ("ts", Float (now_s ())) :: fields))

let span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_s () in
    let v = f () in
    let dur = now_s () -. t0 in
    Histogram.add (histogram name) dur;
    if !tracing then
      emit ~kind:"span"
        [ ("name", String name); ("start_s", Float t0); ("dur_s", Float dur) ];
    v
  end
