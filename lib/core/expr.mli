(** GP expression trees over the primitives of Table 1 of the paper, plus
    protected division (used by the paper's best evolved expression,
    Figure 8).  Real-valued and Boolean-valued trees are distinct sorts,
    matching the paper's two-sorted primitive table. *)

type rexpr =
  | Radd of rexpr * rexpr
  | Rsub of rexpr * rexpr
  | Rmul of rexpr * rexpr
  | Rdiv of rexpr * rexpr            (** protected: y ~ 0 yields x *)
  | Rsqrt of rexpr                   (** protected: sqrt |x| *)
  | Rtern of bexpr * rexpr * rexpr   (** if b then x else y *)
  | Rcmul of bexpr * rexpr * rexpr   (** if b then x*y else y *)
  | Rconst of float
  | Rarg of int                      (** real feature index *)

and bexpr =
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bnot of bexpr
  | Blt of rexpr * rexpr
  | Bgt of rexpr * rexpr
  | Beq of rexpr * rexpr
  | Bconst of bool
  | Barg of int                      (** Boolean feature index *)

(** A genome is either a real-valued priority function (hyperblock
    formation, register allocation) or a Boolean-valued one (data
    prefetching). *)
type genome =
  | Real of rexpr
  | Bool of bexpr

val size_r : rexpr -> int
val size_b : bexpr -> int

val size : genome -> int
(** Number of tree nodes; the quantity parsimony pressure minimizes. *)

val depth_r : rexpr -> int
val depth_b : bexpr -> int

val depth : genome -> int
(** Height of the tree (a leaf has depth 1). *)

val features : genome -> [ `Real of int | `Bool of int ] list
(** Sorted, deduplicated indices of the features the genome references. *)

val equal_genome : genome -> genome -> bool
(** Structural equality. *)
