(* Named feature environments.

   A priority function is evaluated against an environment of real-valued
   and Boolean-valued features extracted by the compiler writer (Table 4 of
   the paper for hyperblock formation).  Features are resolved to dense
   array indices once, when an expression is compiled against a feature
   set, so evaluation in the compiler's inner loop is array indexing. *)

type t = {
  reals : string array;
  bools : string array;
  real_index : (string, int) Hashtbl.t;
  bool_index : (string, int) Hashtbl.t;
}

let make ~reals ~bools =
  let mk names =
    let tbl = Hashtbl.create (Array.length names) in
    Array.iteri
      (fun i n ->
        if Hashtbl.mem tbl n then
          invalid_arg ("Feature_set.make: duplicate feature " ^ n);
        Hashtbl.replace tbl n i)
      names;
    tbl
  in
  let reals = Array.of_list reals and bools = Array.of_list bools in
  { reals; bools; real_index = mk reals; bool_index = mk bools }

let n_reals t = Array.length t.reals
let n_bools t = Array.length t.bools

let real_name t i = t.reals.(i)
let bool_name t i = t.bools.(i)

let real_index t name = Hashtbl.find_opt t.real_index name
let bool_index t name = Hashtbl.find_opt t.bool_index name

(* A concrete binding of features to values, filled in by the optimization
   pass for each decision point (e.g. each candidate path). *)
type env = {
  real_values : float array;
  bool_values : bool array;
}

let empty_env t =
  {
    real_values = Array.make (max 1 (n_reals t)) 0.0;
    bool_values = Array.make (max 1 (n_bools t)) false;
  }

let set_real t env name v =
  match real_index t name with
  | Some i -> env.real_values.(i) <- v
  | None -> invalid_arg ("Feature_set.set_real: unknown feature " ^ name)

let set_bool t env name v =
  match bool_index t name with
  | Some i -> env.bool_values.(i) <- v
  | None -> invalid_arg ("Feature_set.set_bool: unknown feature " ^ name)
