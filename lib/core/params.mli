(** GP run parameters (Table 2 of the paper). *)

type t = {
  population_size : int;
  generations : int;
  replacement_frac : float;  (** fraction replaced per generation *)
  mutation_rate : float;     (** fraction of offspring mutated *)
  tournament_size : int;
  elitism : bool;            (** best expression guaranteed survival *)
  parsimony_eps : float;     (** fitness-tie tolerance broken by size *)
  init_depth : int;          (** ramped half-and-half depth cap *)
  max_depth : int;           (** hard depth cap for offspring *)
  seed_baseline : bool;      (** include the compiler's heuristic in gen 0 *)
  rng_seed : int;
}

val default : t
(** Table 2: population 400, 50 generations, 22% replacement, 5% mutation,
    tournament 7, elitism on. *)

val scaled : t
(** A laptop-scale configuration preserving Table 2's ratios. *)

val tiny : t
(** For unit tests. *)
