(* Dynamic subset selection [Gathercole 98], the technique the paper uses
   to train general-purpose priority functions over many benchmarks
   without evaluating every expression on every benchmark.

   Each training case (benchmark) carries a difficulty score — how badly
   the population performed on it when it was last selected — and an age —
   generations since it was last selected.  Selection weight for case i is
   difficulty_i^d + age_i^a; a subset is drawn by weighted sampling without
   replacement each generation. *)

type t = {
  n_cases : int;
  subset_size : int;
  difficulty_exp : float;
  age_exp : float;
  difficulty : float array;
  age : float array;
}

let create ?(difficulty_exp = 1.0) ?(age_exp = 1.0) ~n_cases ~subset_size () =
  if subset_size <= 0 || subset_size > n_cases then
    invalid_arg "Dss.create: subset_size out of range";
  {
    n_cases;
    subset_size;
    difficulty_exp;
    age_exp;
    difficulty = Array.make n_cases 1.0;
    age = Array.make n_cases 1.0;
  }

(* Difficulty is a failure fraction in [0,1]; Gathercole's difficulty is a
   count of failing individuals, so scale the fraction to a comparable
   magnitude before exponentiation — otherwise the age term swamps it and
   selection degenerates to round-robin. *)
let difficulty_scale = 50.0

let weight t i =
  ((difficulty_scale *. t.difficulty.(i)) ** t.difficulty_exp)
  +. (t.age.(i) ** t.age_exp)

(* Weighted sampling without replacement. *)
let select t rng : int list =
  let taken = Array.make t.n_cases false in
  let pick () =
    let total = ref 0.0 in
    for i = 0 to t.n_cases - 1 do
      if not taken.(i) then total := !total +. weight t i
    done;
    let x = ref (Random.State.float rng !total) in
    let chosen = ref (-1) in
    (try
       for i = 0 to t.n_cases - 1 do
         if not taken.(i) then begin
           x := !x -. weight t i;
           if !x <= 0.0 then begin
             chosen := i;
             raise Exit
           end
         end
       done
     with Exit -> ());
    let i = if !chosen >= 0 then !chosen else
        (* Floating-point slack: take the last untaken case. *)
        let last = ref 0 in
        for j = 0 to t.n_cases - 1 do
          if not taken.(j) then last := j
        done;
        !last
    in
    taken.(i) <- true;
    i
  in
  List.init t.subset_size (fun _ -> pick ())

(* After a generation: cases in the subset get difficulty = observed failure
   rate (fraction of evaluated individuals that did not beat the baseline)
   and age reset to 1; others age by one generation.  A small floor keeps
   solved cases selectable. *)
let update t ~subset ~failure_rate =
  for i = 0 to t.n_cases - 1 do
    if List.mem i subset then begin
      t.difficulty.(i) <- Float.max 0.05 (failure_rate i);
      t.age.(i) <- 1.0
    end
    else t.age.(i) <- t.age.(i) +. 1.0
  done
