(** Algebraic simplification of GP expressions — the mechanical part of
    the paper's "hand simplified for ease of discussion", sound under the
    protected evaluation semantics (notably, x/x is *not* rewritten to 1:
    protected division returns the numerator near zero).

    Soundness is bit-exact ([Int64.bits_of_float]-equal results), which
    the evaluator cache keying depends on; in particular zero-sign
    rewrites ([0 * x], [0 + x], [x - 0]) only fire when IEEE-754 signed
    zeros provably cannot distinguish the two sides.  The assumed input
    domain is genomes with finite constants evaluated on finite feature
    environments ([Gen] and constant folding maintain the former). *)

val rexpr : Expr.rexpr -> Expr.rexpr
val bexpr : Expr.bexpr -> Expr.bexpr

val genome : Expr.genome -> Expr.genome
(** Fixed-point simplification; never changes the bits of the value
    computed on any finite environment. *)
