(** Algebraic simplification of GP expressions — the mechanical part of
    the paper's "hand simplified for ease of discussion", sound under the
    protected evaluation semantics (notably, x/x is *not* rewritten to 1:
    protected division returns the numerator near zero). *)

val rexpr : Expr.rexpr -> Expr.rexpr
val bexpr : Expr.bexpr -> Expr.bexpr

val genome : Expr.genome -> Expr.genome
(** Fixed-point simplification; never changes the value computed on any
    environment. *)
