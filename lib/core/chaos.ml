(* Deterministic fault injection, promoted from the test harness into a
   first-class subsystem.

   A [plan] is a seed-stamped list of rules; each rule names an
   instrumented site, optionally a key (task index, append number,
   generation) and a 1-based attempt, and the fault to inject there.
   Sites in the supervised pool, the evaluator's disk cache and the
   checkpoint writer ask [fire] on every pass; with no plan armed the
   query is one atomic load.  Everything is deterministic: the same
   plan against the same run injects the same faults at the same
   points, so a failing chaos run is replayable from its seed.

   Faults split into two families:

   - task faults (Hang / Slow / Raise / Exit / Kill) fire inside a
     supervised worker.  [Slow] naps in small slices and polls the
     cancellation token between them, so a slice that outlives the
     deadline is cancelled cooperatively — the recoverable analogue of
     a hang.  [Hang] never polls: it exercises the quarantine path.
     [Exit]/[Kill] take the whole process down, so they are only
     honored where the worker is a disposable forked child; a domain
     worker degrades them to an exception.
   - write faults (Torn_write / Truncated) fire at a writer and corrupt
     the artifact instead of the control flow: a torn cache append, a
     truncated checkpoint.  Both are recoverable by design — readers
     skip or recompute — which is what the chaos_vs_clean oracle
     checks. *)

type fault =
  | Hang  (* never return, never poll: must be quarantined *)
  | Slow of float  (* nap this long, polling the cancel token *)
  | Raise of string  (* the task raises *)
  | Exit of int  (* forked worker exits without replying *)
  | Kill of int  (* forked worker kills itself with this signal *)
  | Torn_write  (* write site: emit a torn, partial record *)
  | Truncated  (* write site: truncate the finished artifact *)

let fault_to_string = function
  | Hang -> "hang"
  | Slow s -> Printf.sprintf "slow:%g" s
  | Raise m -> Printf.sprintf "raise:%s" m
  | Exit c -> Printf.sprintf "exit:%d" c
  | Kill s -> Printf.sprintf "kill:%d" s
  | Torn_write -> "torn"
  | Truncated -> "truncate"

let fault_of_string s =
  let prefixed p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match s with
  | "hang" -> Some Hang
  | "torn" -> Some Torn_write
  | "truncate" -> Some Truncated
  | _ -> (
    match prefixed "slow:" with
    | Some v -> Option.map (fun f -> Slow f) (float_of_string_opt v)
    | None -> (
      match prefixed "raise:" with
      | Some m -> Some (Raise m)
      | None -> (
        match prefixed "exit:" with
        | Some c -> Option.map (fun c -> Exit c) (int_of_string_opt c)
        | None -> (
          match prefixed "kill:" with
          | Some g -> Option.map (fun g -> Kill g) (int_of_string_opt g)
          | None -> None))))

(* --- Sites --------------------------------------------------------------- *)

let site_parmap_task = "parmap.task"
let site_cache_write = "evaluator.cache_write"
let site_cache_lock = "evaluator.cache_lock"
let site_checkpoint_write = "evolve.checkpoint_write"

let sites =
  [ site_parmap_task; site_cache_write; site_cache_lock; site_checkpoint_write ]

(* --- Plans --------------------------------------------------------------- *)

type rule = {
  r_site : string;
  r_key : int option;  (* None matches any key *)
  r_attempt : int option;  (* 1-based; None matches any attempt *)
  r_fault : fault;
}

type plan = { seed : int; rules : rule list }

let rule_to_string r =
  Printf.sprintf "%s%s%s=%s" r.r_site
    (match r.r_key with Some k -> Printf.sprintf ":%d" k | None -> "")
    (match r.r_attempt with Some a -> Printf.sprintf "@%d" a | None -> "")
    (fault_to_string r.r_fault)

let plan_to_string p =
  String.concat "," (List.map rule_to_string p.rules)

(* One rule: SITE[:KEY][@ATTEMPT]=FAULT.  A plan: rules joined by ','. *)
let rule_of_string s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "chaos rule %S: missing '=FAULT'" s)
  | Some eq -> (
    let lhs = String.sub s 0 eq in
    let rhs = String.sub s (eq + 1) (String.length s - eq - 1) in
    match fault_of_string rhs with
    | None -> Error (Printf.sprintf "chaos rule %S: unknown fault %S" s rhs)
    | Some fault -> (
      let lhs, attempt =
        match String.index_opt lhs '@' with
        | None -> (lhs, Ok None)
        | Some at ->
          ( String.sub lhs 0 at,
            match
              int_of_string_opt
                (String.sub lhs (at + 1) (String.length lhs - at - 1))
            with
            | Some a when a >= 1 -> Ok (Some a)
            | _ -> Error (Printf.sprintf "chaos rule %S: bad attempt" s) )
      in
      let site, key =
        match String.index_opt lhs ':' with
        | None -> (lhs, Ok None)
        | Some c ->
          ( String.sub lhs 0 c,
            match
              int_of_string_opt
                (String.sub lhs (c + 1) (String.length lhs - c - 1))
            with
            | Some k -> Ok (Some k)
            | None -> Error (Printf.sprintf "chaos rule %S: bad key" s) )
      in
      match (attempt, key) with
      | Error e, _ | _, Error e -> Error e
      | Ok r_attempt, Ok r_key ->
        if not (List.mem site sites) then
          Error
            (Printf.sprintf "chaos rule %S: unknown site %S (known: %s)" s
               site (String.concat ", " sites))
        else Ok { r_site = site; r_key; r_attempt; r_fault = fault }))

let plan_of_string ?(seed = 0) s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' s)
  in
  if parts = [] then Error "chaos plan: no rules"
  else
    let rec go acc = function
      | [] -> Ok { seed; rules = List.rev acc }
      | p :: rest -> (
        match rule_of_string (String.trim p) with
        | Ok r -> go (r :: acc) rest
        | Error _ as e -> e)
    in
    go [] parts

(* A seed-driven plan of recoverable faults only: first-attempt task
   faults that a single retry absorbs, one cooperative over-deadline
   nap, a torn cache append and a truncated checkpoint.  Used by the
   seeded suite of [metaopt chaos] and the chaos_vs_clean oracle, whose
   contract is that a run injected with this plan is bit-identical to
   the fault-free run. *)
let seeded ~seed =
  (* splitmix-style mixing so nearby seeds give unrelated picks *)
  let mix s salt =
    let z = (s + salt) * 0x9E3779B1 land max_int in
    let z = z lxor (z lsr 15) * 0x85EBCA77 land max_int in
    z lxor (z lsr 13)
  in
  {
    seed;
    rules =
      [
        (* one task naps past any reasonable deadline on its first
           attempt: cancelled at the deadline, retried clean *)
        {
          r_site = site_parmap_task;
          r_key = Some (mix seed 1 mod 4);
          r_attempt = Some 1;
          r_fault = Slow 30.0;
        };
        (* every other task fails its first attempt fast — a crash or a
           sub-deadline nap, seed's choice *)
        {
          r_site = site_parmap_task;
          r_key = None;
          r_attempt = Some 1;
          r_fault =
            (if mix seed 2 land 1 = 0 then Raise "chaos" else Slow 0.002);
        };
        {
          r_site = site_cache_write;
          r_key = Some (1 + (mix seed 3 mod 3));
          r_attempt = None;
          r_fault = Torn_write;
        };
        {
          r_site = site_checkpoint_write;
          r_key = Some (1 + (mix seed 4 mod 3));
          r_attempt = None;
          r_fault = Truncated;
        };
      ];
  }

(* --- Arming and firing --------------------------------------------------- *)

(* The armed plan is read concurrently by domain workers; [Atomic] makes
   the publication race-free.  Arm before starting the run under test,
   disarm after. *)
let armed_plan : plan option Atomic.t = Atomic.make None

let arm p = Atomic.set armed_plan (Some p)
let disarm () = Atomic.set armed_plan None
let armed () = Atomic.get armed_plan

(* Injection counters, per (site, key): how many times [fire] matched a
   rule there.  Shared-memory only — forked children count in their own
   copy — so they are meaningful for the domains backend and the
   parent-side write sites; fork-based tests keep the filesystem ledger
   below.  Guarded by a mutex: fires are rare (faults, not safepoints). *)
let counts : (string * int, int) Hashtbl.t = Hashtbl.create 16
let counts_mu = Mutex.create ()

let count_fire site key =
  Mutex.lock counts_mu;
  let k = (site, key) in
  Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k));
  Mutex.unlock counts_mu

let fired ~site ~key =
  Mutex.lock counts_mu;
  let n = Option.value ~default:0 (Hashtbl.find_opt counts (site, key)) in
  Mutex.unlock counts_mu;
  n

let reset_counts () =
  Mutex.lock counts_mu;
  Hashtbl.reset counts;
  Mutex.unlock counts_mu

let fire ~site ~key ~attempt =
  match Atomic.get armed_plan with
  | None -> None
  | Some p -> (
    let matches r =
      r.r_site = site
      && (match r.r_key with None -> true | Some k -> k = key)
      && match r.r_attempt with None -> true | Some a -> a = attempt
    in
    match List.find_opt matches p.rules with
    | None -> None
    | Some r ->
      count_fire site key;
      Some r.r_fault)

(* --- Acting on a fault --------------------------------------------------- *)

let trigger ?(isolated = true) fault =
  match fault with
  | Hang ->
    (* deliberately token-blind: only SIGKILL (fork) or quarantine
       (domains) can end this *)
    while true do
      Unix.sleepf 3600.0
    done
  | Slow s ->
    let until = Unix.gettimeofday () +. s in
    let tok = Cancel.current () in
    let rec nap () =
      Cancel.check tok;
      let left = until -. Unix.gettimeofday () in
      if left > 0.0 then begin
        (try Unix.sleepf (Float.min left 0.005)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        nap ()
      end
    in
    nap ()
  | Raise msg -> failwith msg
  | Exit code ->
    if isolated then Unix._exit code
    else failwith (Printf.sprintf "chaos: exit %d (worker not isolated)" code)
  | Kill signal ->
    if isolated then begin
      Unix.kill (Unix.getpid ()) signal;
      Unix.sleepf 60.0 (* a catchable signal may take a moment to land *)
    end
    else failwith (Printf.sprintf "chaos: kill %d (worker not isolated)" signal)
  | Torn_write | Truncated ->
    (* write-site faults are interpreted by the writer, not here *)
    ()

(* The supervised pool's task site: fire-and-trigger around one attempt.
   [isolated] says whether the caller can absorb a process exit (forked
   worker) or only an exception (domain worker / in-process). *)
let task_point ~isolated ~key ~attempt =
  match fire ~site:site_parmap_task ~key ~attempt with
  | Some fault -> trigger ~isolated fault
  | None -> ()

(* --- Filesystem attempt ledger ------------------------------------------- *)

(* Promoted verbatim from the old test harness: forked workers' memory
   is invisible to the parent, so attempts are counted through the
   filesystem — every attempt appends one byte to a per-task file and
   the file's size is the attempt count, visible from any process and
   still there after the run. *)
module Ledger = struct
  let fresh_dir tag =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "metaopt-chaos-%s-%d" tag (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

  let cleanup dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end

  let attempt_file dir task =
    Filename.concat dir (Printf.sprintf "task-%d" task)

  (* Record one attempt of [task]; returns this attempt's 1-based
     number.  Only one attempt of a given task is ever in flight, so the
     append needs no locking. *)
  let record_attempt dir task =
    let fd =
      Unix.openfile (attempt_file dir task)
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644
    in
    ignore (Unix.write fd (Bytes.make 1 '.') 0 1);
    let n = (Unix.fstat fd).Unix.st_size in
    Unix.close fd;
    n

  let attempts dir task =
    try (Unix.stat (attempt_file dir task)).Unix.st_size
    with Unix.Unix_error _ -> 0

  (* [wrap ~dir ~plan f] records an attempt for every integer task,
     injects [plan task attempt] when it yields a fault (the attempt
     number is 1-based, so "fail the first two times" is
     [fun _ n -> if n <= 2 then Some fault else None]), and otherwise
     computes [f task]. *)
  let wrap ?(isolated = true) ~dir ~plan f task =
    let n = record_attempt dir task in
    (match plan task n with
    | Some fault -> trigger ~isolated fault
    | None -> ());
    f task
end
