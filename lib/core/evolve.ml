(* The evolutionary search driver (Figure 2 of the paper).

   The driver is generic over the fitness evaluator: a [problem] provides a
   feature set, the genome sort (real-valued or Boolean-valued priority),
   an optional baseline seed expression, and a batch [evaluator] returning
   the speedup of each candidate over the compiler's baseline heuristic on
   each requested training case.  Fitness is the average speedup over the
   cases considered in the generation, exactly the paper's fitness
   definition from Table 2.

   Each generation is evaluated as one batch so a parallel evaluator can
   fan the whole population out at once.  Evaluators memoize per
   (canonical genome, case) because each evaluation costs a full
   compile-and-simulate cycle. *)

type evaluator = {
  evaluate_batch : Expr.genome array -> cases:int list -> float array array;
  evaluations : unit -> int;
}

let sanitize v = if Float.is_finite v && v > 0.0 then v else 0.0

(* Memoization is keyed on the simplified genome, so crossover products
   that reduce to an already-seen expression are cache hits; [f] is called
   on the canonical form for the same reason. *)
let evaluator_of_fn f =
  let memo : (Expr.genome * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let count = ref 0 in
  let evaluate_batch genomes ~cases =
    Array.map
      (fun g ->
        let cg = Simplify.genome g in
        Array.of_list
          (List.map
             (fun c ->
               match Hashtbl.find_opt memo (cg, c) with
               | Some v -> v
               | None ->
                 incr count;
                 let v = sanitize (f cg c) in
                 Hashtbl.replace memo (cg, c) v;
                 v)
             cases))
      genomes
  in
  { evaluate_batch; evaluations = (fun () -> !count) }

type problem = {
  fs : Feature_set.t;
  sort : [ `Real | `Bool ];
  baseline : Expr.genome option;
  n_cases : int;
  case_name : int -> string;
  evaluator : evaluator;
}

type individual = {
  genome : Expr.genome;
  mutable fitness : float;
  mutable size : int;
}

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  best_size : int;
  subset : int list;
  best_expr : string;
}

type result = {
  best : Expr.genome;
  best_fitness : float;          (* mean speedup over all cases *)
  per_case : (string * float) array;
  history : generation_stats list;
  evaluations : int;             (* non-memoized fitness evaluations *)
}

(* Strictly-better ordering with parsimony pressure: higher fitness wins;
   fitness ties within [eps] are broken towards the smaller expression. *)
let better ~eps a b =
  if a.fitness > b.fitness +. eps then true
  else if b.fitness > a.fitness +. eps then false
  else a.size < b.size

let run ?(params = Params.default) ?on_generation (p : problem) : result =
  if p.n_cases <= 0 then invalid_arg "Evolve.run: no training cases";
  let evaluations0 = p.evaluator.evaluations () in
  let rng = Random.State.make [| params.Params.rng_seed |] in
  let gen_cfg =
    { (Gen.default_config p.fs) with Gen.max_depth = params.Params.init_depth }
  in
  (* --- Initial population --- *)
  let seed =
    if params.Params.seed_baseline then Option.to_list p.baseline else []
  in
  let n_random = params.Params.population_size - List.length seed in
  let genomes = seed @ Gen.ramped gen_cfg rng ~sort:p.sort ~count:n_random in
  let pop =
    Array.of_list
      (List.map
         (fun g -> { genome = g; fitness = 0.0; size = Expr.size g })
         genomes)
  in
  let n = Array.length pop in
  (* --- DSS over the training cases --- *)
  let all_cases = List.init p.n_cases Fun.id in
  let dss =
    if p.n_cases >= 4 then
      Some
        (Dss.create ~n_cases:p.n_cases
           ~subset_size:(max 2 ((p.n_cases + 1) / 2))
           ())
    else None
  in
  let eps = params.Params.parsimony_eps in
  (* Tournament over a snapshot of the evaluated generation: offspring
     never compete as parents until they have been batch-scored. *)
  let tournament pool =
    let best = ref pool.(Random.State.int rng n) in
    for _ = 2 to params.Params.tournament_size do
      let c = pool.(Random.State.int rng n) in
      if better ~eps c !best then best := c
    done;
    !best
  in
  let best_index () =
    let bi = ref 0 in
    for i = 1 to n - 1 do
      if better ~eps pop.(i) pop.(!bi) then bi := i
    done;
    !bi
  in
  (* One batch per generation: the whole population against the subset.
     Returns the fitness matrix (row per individual, column per case). *)
  let evaluate_population cases =
    let matrix =
      p.evaluator.evaluate_batch
        (Array.map (fun ind -> ind.genome) pop)
        ~cases
    in
    let k = float_of_int (List.length cases) in
    Array.iteri
      (fun i ind ->
        ind.fitness <- Array.fold_left ( +. ) 0.0 matrix.(i) /. k)
      pop;
    matrix
  in
  let history = ref [] in
  for gen = 0 to params.Params.generations - 1 do
    let subset =
      match dss with
      | Some d -> Dss.select d rng
      | None -> all_cases
    in
    let matrix = evaluate_population subset in
    (* DSS difficulty update: per-case failure rate this generation, read
       straight off the fitness matrix. *)
    (match dss with
    | Some d ->
      let columns = List.mapi (fun j c -> (c, j)) subset in
      let failure_rate c =
        let j = List.assoc c columns in
        let fails =
          Array.fold_left
            (fun acc row -> if row.(j) < 1.0 then acc + 1 else acc)
            0 matrix
        in
        float_of_int fails /. float_of_int n
      in
      Dss.update d ~subset ~failure_rate
    | None -> ());
    let bi = best_index () in
    let mean_fitness =
      Array.fold_left (fun acc i -> acc +. i.fitness) 0.0 pop /. float_of_int n
    in
    let stats =
      {
        gen;
        best_fitness = pop.(bi).fitness;
        mean_fitness;
        best_size = pop.(bi).size;
        subset;
        best_expr = Sexp.to_string p.fs pop.(bi).genome;
      }
    in
    history := stats :: !history;
    (match on_generation with Some f -> f stats | None -> ());
    (* --- Reproduction: replace a random fraction of the population (the
       elite excepted) with crossover offspring, some of them mutated.
       Parents come from the evaluated snapshot; offspring are scored by
       the next generation's batch. --- *)
    if gen < params.Params.generations - 1 then begin
      let parents = Array.copy pop in
      let n_replace =
        int_of_float (Float.round (params.Params.replacement_frac *. float_of_int n))
      in
      for _ = 1 to n_replace do
        let slot = Random.State.int rng n in
        if (not params.Params.elitism) || slot <> bi then begin
          let pa = tournament parents and pb = tournament parents in
          let child =
            Genetic_ops.crossover_bounded rng ~max_depth:params.Params.max_depth
              pa.genome pb.genome
          in
          let child =
            if Random.State.float rng 1.0 < params.Params.mutation_rate then
              Genetic_ops.mutate gen_cfg rng ~max_depth:params.Params.max_depth
                child
            else child
          in
          pop.(slot) <-
            { genome = child; fitness = 0.0; size = Expr.size child }
        end
      done
    end
  done;
  (* Final: score the whole population on the full training set. *)
  let final = evaluate_population all_cases in
  let bi = best_index () in
  let best = pop.(bi) in
  let per_case =
    Array.init p.n_cases (fun c -> (p.case_name c, final.(bi).(c)))
  in
  {
    best = best.genome;
    best_fitness = best.fitness;
    per_case;
    history = List.rev !history;
    evaluations = p.evaluator.evaluations () - evaluations0;
  }
