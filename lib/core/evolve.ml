(* The evolutionary search driver (Figure 2 of the paper).

   The driver is generic over the fitness evaluator: a [problem] provides a
   feature set, the genome sort (real-valued or Boolean-valued priority),
   an optional baseline seed expression, and a batch [evaluator] returning
   the speedup of each candidate over the compiler's baseline heuristic on
   each requested training case.  Fitness is the average speedup over the
   cases considered in the generation, exactly the paper's fitness
   definition from Table 2.

   Each generation is evaluated as one batch so a parallel evaluator can
   fan the whole population out at once.  Evaluators memoize per
   (canonical genome, case) because each evaluation costs a full
   compile-and-simulate cycle. *)

type evaluator = {
  evaluate_batch : Expr.genome array -> cases:int list -> float array array;
  evaluations : unit -> int;
}

let sanitize v = if Float.is_finite v && v > 0.0 then v else 0.0

(* [k] distinct indices in [0, n) by rejection sampling.  The first draw
   of each position is exactly the draw the with-replacement sampler
   would have made, so on the (common) collision-free path the RNG
   consumption — and therefore every downstream decision — is unchanged;
   only an actual collision costs extra draws. *)
let sample_distinct rng ~n ~k =
  if k > n then invalid_arg "Evolve.sample_distinct: k > n";
  if k < 0 then invalid_arg "Evolve.sample_distinct: negative k";
  let out = Array.make (max k 1) 0 in
  let out = if k = 0 then [||] else out in
  for i = 0 to k - 1 do
    let rec draw () =
      let c = Random.State.int rng n in
      let rec dup j = j < i && (out.(j) = c || dup (j + 1)) in
      if dup 0 then draw () else c
    in
    out.(i) <- draw ()
  done;
  out

(* Memoization is keyed on the simplified genome, so crossover products
   that reduce to an already-seen expression are cache hits; [f] is called
   on the canonical form for the same reason. *)
let evaluator_of_fn f =
  let memo : (Expr.genome * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let count = ref 0 in
  let evaluate_batch genomes ~cases =
    Array.map
      (fun g ->
        let cg = Simplify.genome g in
        Array.of_list
          (List.map
             (fun c ->
               match Hashtbl.find_opt memo (cg, c) with
               | Some v -> v
               | None ->
                 incr count;
                 let v = sanitize (f cg c) in
                 Hashtbl.replace memo (cg, c) v;
                 v)
             cases))
      genomes
  in
  { evaluate_batch; evaluations = (fun () -> !count) }

type problem = {
  fs : Feature_set.t;
  sort : [ `Real | `Bool ];
  baseline : Expr.genome option;
  n_cases : int;
  case_name : int -> string;
  evaluator : evaluator;
}

type individual = {
  genome : Expr.genome;
  mutable fitness : float;
  mutable size : int;
}

type generation_stats = {
  gen : int;
  best_fitness : float;
  mean_fitness : float;
  best_size : int;
  subset : int list;
  best_expr : string;
}

type result = {
  best : Expr.genome;
  best_fitness : float;          (* mean speedup over all cases *)
  per_case : (string * float) array;
  history : generation_stats list;
  evaluations : int;             (* non-memoized fitness evaluations *)
}

(* Strictly-better ordering with parsimony pressure: higher fitness wins;
   fitness ties within [eps] are broken towards the smaller expression. *)
let better ~eps a b =
  if a.fitness > b.fitness +. eps then true
  else if b.fitness > a.fitness +. eps then false
  else a.size < b.size

(* --- Checkpoint / resume -------------------------------------------------

   One file per completed generation, [gen-NNNNN.ckpt], written atomically
   (tmp + rename) at the end of the generation's loop body: it captures
   everything the next generation depends on — the RNG state after
   reproduction, the offspring population (as s-expressions, which
   round-trip exactly), the stats history, and the DSS difficulty/age
   state.  Resuming replays nothing: the run continues at [ck_next_gen]
   with bit-identical state, so an interrupted run and an uninterrupted
   one produce the same final best genome.

   Checkpoints are versioned and fingerprinted over (params, n_cases,
   sort); a file from another format version or another run configuration
   is ignored with a warning, as is a torn or corrupt file — the loader
   walks newest-first until it finds a valid one.

   Integrity is checked before [Marshal] gets near the bytes: the writer
   appends a footer (magic, payload length, MD5 digest of the payload),
   so the loader can tell a truncated or bit-rotted file — warned as
   corrupt and counted in the [evolve.checkpoints_skipped] telemetry
   counter — from a healthy file written by another version or another
   run configuration, which is a mismatch, not damage. *)

let checkpoint_version = 1

(* 8-byte magic + 8-byte payload length + 16-byte raw MD5 of payload. *)
let ck_magic = "MOCKPT01"
let ck_footer_len = 8 + 8 + 16

type checkpoint = {
  ck_version : int;
  ck_fingerprint : string;
  ck_next_gen : int; (* first generation still to run *)
  ck_rng : Random.State.t;
  ck_pop : string array; (* genome s-expressions *)
  ck_history : generation_stats list; (* newest first *)
  ck_dss : Dss.t option;
}

let fingerprint (params : Params.t) (p : problem) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (params, p.n_cases, match p.sort with `Real -> 0 | `Bool -> 1)
          []))

let checkpoint_file dir gen =
  Filename.concat dir (Printf.sprintf "gen-%05d.ckpt" gen)

let write_checkpoint dir ck =
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  let final = checkpoint_file dir ck.ck_next_gen in
  let tmp = final ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error e ->
    Logs.warn (fun m -> m "checkpoint not written: %s" e)
  | oc ->
    (* Close-on-exec: a pre-forked pool worker spawned while this
       channel is open must not hold the half-written checkpoint (or
       its flushed-but-unrenamed tmp file) past the parent's write. *)
    (try Unix.set_close_on_exec (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    let payload = Marshal.to_string ck [] in
    output_string oc payload;
    output_string oc ck_magic;
    let len = Bytes.create 8 in
    Bytes.set_int64_le len 0 (Int64.of_int (String.length payload));
    output_bytes oc len;
    output_string oc (Digest.string payload);
    close_out oc;
    (try Sys.rename tmp final
     with Sys_error e ->
       Logs.warn (fun m -> m "checkpoint rename failed: %s" e));
    (* Chaos site: a crash between the rename and the next generation can
       leave a truncated file on disk; the injected fault produces
       exactly that artifact. *)
    (match
       Chaos.fire ~site:Chaos.site_checkpoint_write ~key:ck.ck_next_gen
         ~attempt:1
     with
    | Some Chaos.Truncated -> (
      try
        let sz = (Unix.stat final).Unix.st_size in
        let fd = Unix.openfile final [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 in
        Unix.ftruncate fd (sz / 2);
        Unix.close fd
      with Unix.Unix_error _ -> ())
    | _ -> ())

(* Why a file can be rejected: damage (short read, bad magic, wrong
   length, digest mismatch, unmarshalable payload) vs. a healthy file
   that simply belongs to another format version or run configuration. *)
type ck_reject = Corrupt of string | Mismatch

let read_checkpoint path : (checkpoint, ck_reject) Stdlib.result =
  match open_in_bin path with
  | exception Sys_error e -> Error (Corrupt e)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        if size < ck_footer_len then Error (Corrupt "file shorter than footer")
        else begin
          seek_in ic (size - ck_footer_len);
          let footer = really_input_string ic ck_footer_len in
          let magic = String.sub footer 0 8 in
          let len = Int64.to_int (String.get_int64_le footer 8) in
          let digest = String.sub footer 16 16 in
          if magic <> ck_magic then Error (Corrupt "missing footer magic")
          else if len < 0 || len <> size - ck_footer_len then
            Error (Corrupt "payload length mismatch")
          else begin
            seek_in ic 0;
            let payload = really_input_string ic len in
            if Digest.string payload <> digest then
              Error (Corrupt "payload digest mismatch")
            else
              match (Marshal.from_string payload 0 : checkpoint) with
              | ck -> Ok ck
              | exception _ -> Error (Corrupt "unmarshalable payload")
          end
        end)

let load_checkpoint ~fingerprint:fp path =
  let verdict =
    match read_checkpoint path with
    | Ok ck
      when ck.ck_version = checkpoint_version && ck.ck_fingerprint = fp ->
      Ok ck
    | Ok _ -> Error Mismatch
    | Error _ as e -> e
  in
  match verdict with
  | Ok ck -> Some ck
  | Error Mismatch ->
    Telemetry.incr "evolve.checkpoints_skipped";
    Logs.warn (fun m ->
        m "ignoring checkpoint %s (version or run fingerprint mismatch)" path);
    None
  | Error (Corrupt why) ->
    Telemetry.incr "evolve.checkpoints_skipped";
    Logs.warn (fun m ->
        m "ignoring corrupt checkpoint %s (%s) — resuming from an older one"
          path why);
    None

(* Newest first: higher generation numbers are tried before lower ones, so
   a corrupt latest checkpoint costs one generation, not the run. *)
let latest_checkpoint dir ~fingerprint =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | files ->
    let parse_gen f =
      if
        String.length f = String.length "gen-00000.ckpt"
        && String.sub f 0 4 = "gen-"
        && Filename.check_suffix f ".ckpt"
      then int_of_string_opt (String.sub f 4 5)
      else None
    in
    Array.to_list files
    |> List.filter_map parse_gen
    |> List.sort (fun a b -> compare b a)
    |> List.find_map (fun gen ->
           load_checkpoint ~fingerprint (checkpoint_file dir gen))

let run ?(params = Params.default) ?on_generation ?checkpoint_dir
    (p : problem) : result =
  if p.n_cases <= 0 then invalid_arg "Evolve.run: no training cases";
  let evaluations0 = p.evaluator.evaluations () in
  let gen_cfg =
    { (Gen.default_config p.fs) with Gen.max_depth = params.Params.init_depth }
  in
  let fp =
    match checkpoint_dir with Some _ -> fingerprint params p | None -> ""
  in
  let resumed =
    Option.bind checkpoint_dir (fun dir -> latest_checkpoint dir ~fingerprint:fp)
  in
  let rng, pop, dss, history, start_gen =
    match resumed with
    | Some ck ->
      Logs.info (fun m ->
          m "resuming evolution from checkpoint at generation %d"
            ck.ck_next_gen);
      let pop =
        Array.map
          (fun s ->
            let g = Sexp.parse_genome p.fs ~sort:p.sort s in
            { genome = g; fitness = 0.0; size = Expr.size g })
          ck.ck_pop
      in
      (ck.ck_rng, pop, ck.ck_dss, ref ck.ck_history, ck.ck_next_gen)
    | None ->
      let rng = Random.State.make [| params.Params.rng_seed |] in
      (* --- Initial population ---
         The seed list never exceeds the population: with a tiny
         [population_size] the seeds are truncated and the random count
         clamps at 0, so [Gen.ramped] is never asked for a negative
         count. *)
      let seed =
        if params.Params.seed_baseline then Option.to_list p.baseline else []
      in
      let seed = List.filteri (fun i _ -> i < params.Params.population_size) seed in
      let n_random =
        max 0 (params.Params.population_size - List.length seed)
      in
      let genomes =
        seed @ Gen.ramped gen_cfg rng ~sort:p.sort ~count:n_random
      in
      let pop =
        Array.of_list
          (List.map
             (fun g -> { genome = g; fitness = 0.0; size = Expr.size g })
             genomes)
      in
      (* --- DSS over the training cases --- *)
      let dss =
        if p.n_cases >= 4 then
          Some
            (Dss.create ~n_cases:p.n_cases
               ~subset_size:(max 2 ((p.n_cases + 1) / 2))
               ())
        else None
      in
      (rng, pop, dss, ref [], 0)
  in
  let n = Array.length pop in
  let all_cases = List.init p.n_cases Fun.id in
  let eps = params.Params.parsimony_eps in
  (* Tournament over a snapshot of the evaluated generation: offspring
     never compete as parents until they have been batch-scored.
     Contestants are drawn without replacement whenever the population
     can support it — a duplicate draw would silently shrink the
     effective tournament size and weaken selection pressure.  Smaller
     populations keep the historical with-replacement draws. *)
  let tournament pool =
    let t = params.Params.tournament_size in
    if n >= t && t > 0 then begin
      let idx = sample_distinct rng ~n ~k:t in
      let best = ref pool.(idx.(0)) in
      for i = 1 to t - 1 do
        let c = pool.(idx.(i)) in
        if better ~eps c !best then best := c
      done;
      !best
    end
    else begin
      let best = ref pool.(Random.State.int rng n) in
      for _ = 2 to t do
        let c = pool.(Random.State.int rng n) in
        if better ~eps c !best then best := c
      done;
      !best
    end
  in
  let best_index () =
    let bi = ref 0 in
    for i = 1 to n - 1 do
      if better ~eps pop.(i) pop.(!bi) then bi := i
    done;
    !bi
  in
  (* One batch per generation: the whole population against the subset.
     Returns the fitness matrix (row per individual, column per case). *)
  let evaluate_population cases =
    let matrix =
      p.evaluator.evaluate_batch
        (Array.map (fun ind -> ind.genome) pop)
        ~cases
    in
    let k = float_of_int (List.length cases) in
    Array.iteri
      (fun i ind ->
        ind.fitness <- Array.fold_left ( +. ) 0.0 matrix.(i) /. k)
      pop;
    matrix
  in
  for gen = start_gen to params.Params.generations - 1 do
    let t_gen = if Telemetry.enabled () then Telemetry.now_s () else 0.0 in
    let subset =
      match dss with
      | Some d -> Dss.select d rng
      | None -> all_cases
    in
    let matrix = evaluate_population subset in
    (* DSS difficulty update: per-case failure rate this generation, read
       straight off the fitness matrix. *)
    (match dss with
    | Some d ->
      let columns = List.mapi (fun j c -> (c, j)) subset in
      let failure_rate c =
        let j = List.assoc c columns in
        let fails =
          Array.fold_left
            (fun acc row -> if row.(j) < 1.0 then acc + 1 else acc)
            0 matrix
        in
        float_of_int fails /. float_of_int n
      in
      Dss.update d ~subset ~failure_rate
    | None -> ());
    let bi = best_index () in
    let mean_fitness =
      Array.fold_left (fun acc i -> acc +. i.fitness) 0.0 pop /. float_of_int n
    in
    let stats =
      {
        gen;
        best_fitness = pop.(bi).fitness;
        mean_fitness;
        best_size = pop.(bi).size;
        subset;
        best_expr = Sexp.to_string p.fs pop.(bi).genome;
      }
    in
    history := stats :: !history;
    (match on_generation with Some f -> f stats | None -> ());
    (* One record per generation.  Everything here is derived from state
       the loop already computed; none of it touches [rng], so a run with
       telemetry on is bit-identical to one with it off. *)
    if Telemetry.enabled () then begin
      let nf = float_of_int n in
      let std_fitness =
        let acc =
          Array.fold_left
            (fun a i ->
              let d = i.fitness -. mean_fitness in
              a +. (d *. d))
            0.0 pop
        in
        sqrt (acc /. nf)
      in
      let size_min =
        Array.fold_left (fun a i -> min a i.size) max_int pop
      in
      let size_max = Array.fold_left (fun a i -> max a i.size) 0 pop in
      let size_mean =
        Array.fold_left (fun a i -> a +. float_of_int i.size) 0.0 pop /. nf
      in
      let elapsed = Telemetry.now_s () -. t_gen in
      Telemetry.observe "evolve.generation_s" elapsed;
      Telemetry.emit ~kind:"generation"
        [
          ("gen", Telemetry.Int gen);
          ("best_fitness", Telemetry.Float stats.best_fitness);
          ("mean_fitness", Telemetry.Float mean_fitness);
          ("std_fitness", Telemetry.Float std_fitness);
          ("best_size", Telemetry.Int stats.best_size);
          ("size_min", Telemetry.Int size_min);
          ("size_mean", Telemetry.Float size_mean);
          ("size_max", Telemetry.Int size_max);
          ("population", Telemetry.Int n);
          ("subset_size", Telemetry.Int (List.length subset));
          ( "evaluations",
            Telemetry.Int (p.evaluator.evaluations () - evaluations0) );
          ("elapsed_s", Telemetry.Float elapsed);
          ("best_expr", Telemetry.String stats.best_expr);
        ]
    end;
    (* --- Reproduction: replace a random fraction of the population (the
       elite excepted) with crossover offspring, some of them mutated.
       Parents come from the evaluated snapshot; offspring are scored by
       the next generation's batch. --- *)
    if gen < params.Params.generations - 1 then begin
      let parents = Array.copy pop in
      let n_replace =
        int_of_float (Float.round (params.Params.replacement_frac *. float_of_int n))
      in
      for _ = 1 to n_replace do
        let slot = Random.State.int rng n in
        if (not params.Params.elitism) || slot <> bi then begin
          let pa = tournament parents and pb = tournament parents in
          let child =
            Genetic_ops.crossover_bounded rng ~max_depth:params.Params.max_depth
              pa.genome pb.genome
          in
          let child =
            if Random.State.float rng 1.0 < params.Params.mutation_rate then
              Genetic_ops.mutate gen_cfg rng ~max_depth:params.Params.max_depth
                child
            else child
          in
          pop.(slot) <-
            { genome = child; fitness = 0.0; size = Expr.size child }
        end
      done
    end;
    (* The generation is complete (stats recorded, offspring in place):
       snapshot everything generation [gen + 1] depends on. *)
    (match checkpoint_dir with
    | Some dir ->
      write_checkpoint dir
        {
          ck_version = checkpoint_version;
          ck_fingerprint = fp;
          ck_next_gen = gen + 1;
          ck_rng = rng;
          ck_pop = Array.map (fun ind -> Sexp.to_string p.fs ind.genome) pop;
          ck_history = !history;
          ck_dss = dss;
        }
    | None -> ())
  done;
  (* Final: score the whole population on the full training set. *)
  let final = evaluate_population all_cases in
  let bi = best_index () in
  let best = pop.(bi) in
  let per_case =
    Array.init p.n_cases (fun c -> (p.case_name c, final.(bi).(c)))
  in
  {
    best = best.genome;
    best_fitness = best.fitness;
    per_case;
    history = List.rev !history;
    evaluations = p.evaluator.evaluations () - evaluations0;
  }
