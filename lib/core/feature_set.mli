(** Named feature environments.

    A priority function is evaluated against an environment of real-valued
    and Boolean-valued features extracted by the compiler writer (e.g.
    Table 4 of the paper for hyperblock formation).  Feature names are
    resolved to dense array indices once, so evaluation in the compiler's
    inner loops is plain array indexing. *)

type t
(** A fixed set of real and Boolean feature names. *)

val make : reals:string list -> bools:string list -> t
(** [make ~reals ~bools] builds a feature set.
    @raise Invalid_argument on duplicate names. *)

val n_reals : t -> int
val n_bools : t -> int

val real_name : t -> int -> string
(** Name of the real-valued feature at an index. *)

val bool_name : t -> int -> string
(** Name of the Boolean-valued feature at an index. *)

val real_index : t -> string -> int option
val bool_index : t -> string -> int option

(** A concrete binding of features to values, filled by an optimization
    pass for each decision point (e.g. each candidate path). *)
type env = {
  real_values : float array;
  bool_values : bool array;
}

val empty_env : t -> env
(** Fresh environment with all reals 0.0 and all Booleans false. *)

val set_real : t -> env -> string -> float -> unit
(** @raise Invalid_argument on an unknown feature name. *)

val set_bool : t -> env -> string -> bool -> unit
(** @raise Invalid_argument on an unknown feature name. *)
