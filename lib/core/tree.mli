(** Tree navigation for the genetic operators: enumerate nodes with depth
    and sort, extract and replace subtrees by path. *)

type sort = S_real | S_bool

type node = {
  path : int list;   (** child indices from the root; root = [[]] *)
  node_depth : int;  (** root = 0 *)
  sort : sort;
}

val nodes : Expr.genome -> node list
(** All nodes, preorder; length equals {!Expr.size}. *)

val subtree : Expr.genome -> int list -> Expr.genome
(** @raise Invalid_argument on a bad path. *)

val replace : Expr.genome -> int list -> Expr.genome -> Expr.genome
(** [replace g path repl] substitutes the subtree at [path].
    @raise Invalid_argument on a bad path or a sort mismatch. *)

val pick_depth_fair :
  Random.State.t -> ?sort:sort -> Expr.genome -> node option
(** Depth-fair node choice [Kessler & Haynes 99]: a uniformly random
    occupied depth level, then a uniformly random node within it —
    avoiding the leaf bias of uniform node selection.  [None] if no node
    of the requested sort exists. *)
