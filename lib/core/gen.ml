(* Random expression generation: the classic grow / full methods and
   ramped half-and-half initialization [Koza 92].

   Constants are drawn from a mix of a uniform [0,2) range (most feature
   values are normalized ratios) and a wider exponential range, so initial
   populations contain both fine weights and large thresholds. *)

type config = {
  fs : Feature_set.t;
  max_depth : int;
  (* Probability that a grown real node is a leaf, before reaching max
     depth. *)
  leaf_prob : float;
  (* Probability that a real leaf is a constant rather than a feature. *)
  const_prob : float;
}

let default_config fs =
  { fs; max_depth = 6; leaf_prob = 0.3; const_prob = 0.35 }

let random_const rng =
  if Random.State.bool rng then Random.State.float rng 2.0
  else (10.0 ** Random.State.float rng 2.0) *. Random.State.float rng 1.0

let real_leaf cfg rng =
  if Feature_set.n_reals cfg.fs = 0 || Random.State.float rng 1.0 < cfg.const_prob
  then Expr.Rconst (random_const rng)
  else Expr.Rarg (Random.State.int rng (Feature_set.n_reals cfg.fs))

let bool_leaf cfg rng =
  if Feature_set.n_bools cfg.fs = 0 || Random.State.float rng 1.0 < 0.2 then
    Expr.Bconst (Random.State.bool rng)
  else Expr.Barg (Random.State.int rng (Feature_set.n_bools cfg.fs))

(* [full = true] builds full trees to exactly [depth]; otherwise grow. *)
let rec gen_real cfg rng ~full depth : Expr.rexpr =
  if
    depth <= 1
    || ((not full) && Random.State.float rng 1.0 < cfg.leaf_prob)
  then real_leaf cfg rng
  else
    match Random.State.int rng 7 with
    | 0 -> Expr.Radd (gen_real cfg rng ~full (depth - 1),
                      gen_real cfg rng ~full (depth - 1))
    | 1 -> Expr.Rsub (gen_real cfg rng ~full (depth - 1),
                      gen_real cfg rng ~full (depth - 1))
    | 2 -> Expr.Rmul (gen_real cfg rng ~full (depth - 1),
                      gen_real cfg rng ~full (depth - 1))
    | 3 -> Expr.Rdiv (gen_real cfg rng ~full (depth - 1),
                      gen_real cfg rng ~full (depth - 1))
    | 4 -> Expr.Rsqrt (gen_real cfg rng ~full (depth - 1))
    | 5 -> Expr.Rtern (gen_bool cfg rng ~full (depth - 1),
                       gen_real cfg rng ~full (depth - 1),
                       gen_real cfg rng ~full (depth - 1))
    | _ -> Expr.Rcmul (gen_bool cfg rng ~full (depth - 1),
                       gen_real cfg rng ~full (depth - 1),
                       gen_real cfg rng ~full (depth - 1))

and gen_bool cfg rng ~full depth : Expr.bexpr =
  if
    depth <= 1
    || ((not full) && Random.State.float rng 1.0 < cfg.leaf_prob)
  then bool_leaf cfg rng
  else
    match Random.State.int rng 6 with
    | 0 -> Expr.Band (gen_bool cfg rng ~full (depth - 1),
                      gen_bool cfg rng ~full (depth - 1))
    | 1 -> Expr.Bor (gen_bool cfg rng ~full (depth - 1),
                     gen_bool cfg rng ~full (depth - 1))
    | 2 -> Expr.Bnot (gen_bool cfg rng ~full (depth - 1))
    | 3 -> Expr.Blt (gen_real cfg rng ~full (depth - 1),
                     gen_real cfg rng ~full (depth - 1))
    | 4 -> Expr.Bgt (gen_real cfg rng ~full (depth - 1),
                     gen_real cfg rng ~full (depth - 1))
    | _ -> Expr.Beq (gen_real cfg rng ~full (depth - 1),
                     gen_real cfg rng ~full (depth - 1))

let genome cfg rng ~sort ~full depth : Expr.genome =
  match sort with
  | `Real -> Expr.Real (gen_real cfg rng ~full depth)
  | `Bool -> Expr.Bool (gen_bool cfg rng ~full depth)

(* Ramped half-and-half: depths ramp over [2, max_depth]; half the trees at
   each depth are full, half grown. *)
let ramped cfg rng ~sort ~count : Expr.genome list =
  List.init count (fun i ->
      let depth = 2 + (i mod (max 1 (cfg.max_depth - 1))) in
      let full = i mod 2 = 0 in
      genome cfg rng ~sort ~full depth)
