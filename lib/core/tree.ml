(* Tree navigation for genetic operators: enumerate nodes with their depth
   and sort, extract a subtree by path, replace a subtree by path.  A path
   is the list of child indices from the root. *)

type sort = S_real | S_bool

type node = {
  path : int list;   (* root = [] *)
  node_depth : int;  (* root = 0 *)
  sort : sort;
}

(* Children of a node, each tagged with its sort, in a fixed order that
   paths refer to. *)
let children_g (g : Expr.genome) : Expr.genome list =
  match g with
  | Expr.Real e -> (
    match e with
    | Expr.Radd (a, b) | Expr.Rsub (a, b) | Expr.Rmul (a, b) | Expr.Rdiv (a, b)
      -> [ Expr.Real a; Expr.Real b ]
    | Expr.Rsqrt a -> [ Expr.Real a ]
    | Expr.Rtern (c, a, b) | Expr.Rcmul (c, a, b) ->
      [ Expr.Bool c; Expr.Real a; Expr.Real b ]
    | Expr.Rconst _ | Expr.Rarg _ -> [])
  | Expr.Bool e -> (
    match e with
    | Expr.Band (a, b) | Expr.Bor (a, b) -> [ Expr.Bool a; Expr.Bool b ]
    | Expr.Bnot a -> [ Expr.Bool a ]
    | Expr.Blt (a, b) | Expr.Bgt (a, b) | Expr.Beq (a, b) ->
      [ Expr.Real a; Expr.Real b ]
    | Expr.Bconst _ | Expr.Barg _ -> [])

let sort_of = function Expr.Real _ -> S_real | Expr.Bool _ -> S_bool

(* All nodes of a genome, preorder. *)
let nodes (g : Expr.genome) : node list =
  let acc = ref [] in
  let rec go path depth g =
    acc := { path = List.rev path; node_depth = depth; sort = sort_of g } :: !acc;
    List.iteri (fun i c -> go (i :: path) (depth + 1) c) (children_g g)
  in
  go [] 0 g;
  List.rev !acc

let subtree (g : Expr.genome) (path : int list) : Expr.genome =
  let rec go g = function
    | [] -> g
    | i :: rest -> (
      match List.nth_opt (children_g g) i with
      | Some c -> go c rest
      | None -> invalid_arg "Tree.subtree: bad path")
  in
  go g path

(* Rebuild a node with a replaced child.  Fails if the replacement's sort
   does not match the slot's sort. *)
let with_child (g : Expr.genome) (i : int) (c : Expr.genome) : Expr.genome =
  let r = function
    | Expr.Real e -> e
    | Expr.Bool _ -> invalid_arg "Tree.with_child: expected real subtree"
  and b = function
    | Expr.Bool e -> e
    | Expr.Real _ -> invalid_arg "Tree.with_child: expected Boolean subtree"
  in
  match g with
  | Expr.Real e ->
    Expr.Real
      (match (e, i) with
      | Expr.Radd (_, y), 0 -> Expr.Radd (r c, y)
      | Expr.Radd (x, _), 1 -> Expr.Radd (x, r c)
      | Expr.Rsub (_, y), 0 -> Expr.Rsub (r c, y)
      | Expr.Rsub (x, _), 1 -> Expr.Rsub (x, r c)
      | Expr.Rmul (_, y), 0 -> Expr.Rmul (r c, y)
      | Expr.Rmul (x, _), 1 -> Expr.Rmul (x, r c)
      | Expr.Rdiv (_, y), 0 -> Expr.Rdiv (r c, y)
      | Expr.Rdiv (x, _), 1 -> Expr.Rdiv (x, r c)
      | Expr.Rsqrt _, 0 -> Expr.Rsqrt (r c)
      | Expr.Rtern (_, x, y), 0 -> Expr.Rtern (b c, x, y)
      | Expr.Rtern (p, _, y), 1 -> Expr.Rtern (p, r c, y)
      | Expr.Rtern (p, x, _), 2 -> Expr.Rtern (p, x, r c)
      | Expr.Rcmul (_, x, y), 0 -> Expr.Rcmul (b c, x, y)
      | Expr.Rcmul (p, _, y), 1 -> Expr.Rcmul (p, r c, y)
      | Expr.Rcmul (p, x, _), 2 -> Expr.Rcmul (p, x, r c)
      | (Expr.Rconst _ | Expr.Rarg _), _ | _, _ ->
        invalid_arg "Tree.with_child: bad child index")
  | Expr.Bool e ->
    Expr.Bool
      (match (e, i) with
      | Expr.Band (_, y), 0 -> Expr.Band (b c, y)
      | Expr.Band (x, _), 1 -> Expr.Band (x, b c)
      | Expr.Bor (_, y), 0 -> Expr.Bor (b c, y)
      | Expr.Bor (x, _), 1 -> Expr.Bor (x, b c)
      | Expr.Bnot _, 0 -> Expr.Bnot (b c)
      | Expr.Blt (_, y), 0 -> Expr.Blt (r c, y)
      | Expr.Blt (x, _), 1 -> Expr.Blt (x, r c)
      | Expr.Bgt (_, y), 0 -> Expr.Bgt (r c, y)
      | Expr.Bgt (x, _), 1 -> Expr.Bgt (x, r c)
      | Expr.Beq (_, y), 0 -> Expr.Beq (r c, y)
      | Expr.Beq (x, _), 1 -> Expr.Beq (x, r c)
      | (Expr.Bconst _ | Expr.Barg _), _ | _, _ ->
        invalid_arg "Tree.with_child: bad child index")

let replace (g : Expr.genome) (path : int list) (repl : Expr.genome) :
    Expr.genome =
  let rec go g = function
    | [] -> repl
    | i :: rest -> (
      match List.nth_opt (children_g g) i with
      | Some c -> with_child g i (go c rest)
      | None -> invalid_arg "Tree.replace: bad path")
  in
  go g path

(* Depth-fair node choice [Kessler & Haynes 99]: pick a depth level
   uniformly among occupied levels (restricted to nodes of [sort] if
   given), then a node uniformly within that level.  This avoids the bias
   of uniform node selection towards leaves. *)
let pick_depth_fair rng ?sort (g : Expr.genome) : node option =
  let all = nodes g in
  let eligible =
    match sort with
    | None -> all
    | Some s -> List.filter (fun n -> n.sort = s) all
  in
  match eligible with
  | [] -> None
  | _ ->
    let levels =
      List.sort_uniq compare (List.map (fun n -> n.node_depth) eligible)
    in
    let level = List.nth levels (Random.State.int rng (List.length levels)) in
    let at_level = List.filter (fun n -> n.node_depth = level) eligible in
    Some (List.nth at_level (Random.State.int rng (List.length at_level)))
