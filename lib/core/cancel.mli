(** Cooperative per-task cancellation for the domains pool.

    A domain cannot be killed, so deadlines in the [`Domains] backend
    are enforced cooperatively: {!Parmap}'s supervisor installs a
    {!token} (atomic flag + absolute wall-clock deadline) around each
    task attempt, the evaluation stack's hot loops poll it at cheap
    safepoints — the interpreter's block loop, trace replay, [Evalc]'s
    batch chunks, and the [Eval] tree-walker's fuel counter — and a
    poll past the deadline raises {!Cancelled}, which the supervisor
    maps to a [Timed_out] outcome.

    Outside any supervised task the current token is the shared
    {!never}, whose poll is one atomic load and one float compare; the
    clock is only read when a real deadline is set.  Polling therefore
    never changes results — a clean run with no deadline is
    bit-identical with or without safepoints. *)

exception Cancelled
(** Raised by {!check}/{!tick} once the current token is cancelled or
    past its deadline.  Task code should let it propagate: the domains
    supervisor catches it at the task boundary. *)

type token

val never : token
(** The inert token: never cancelled, no deadline.  It is the initial
    current token of every domain. *)

val create : ?deadline_s:float -> unit -> token
(** A fresh token, with an absolute deadline [deadline_s] seconds from
    now when given.  @raise Invalid_argument on a non-positive
    deadline. *)

val active : token -> bool
(** [false] exactly for {!never} — lets hot loops skip even the cheap
    poll when no supervision is installed. *)

val cancel : token -> unit
(** Flag the token cancelled (idempotent; a no-op on {!never}).  Safe
    from any domain. *)

val cancelled : token -> bool
(** Whether the token is flagged or past its deadline. *)

val deadline : token -> float
(** The absolute deadline ([infinity] when none) — used by the domains
    supervisor to schedule its quarantine sweep. *)

val check : token -> unit
(** @raise Cancelled when {!cancelled}. *)

val current : unit -> token
(** The calling domain's current token ({!never} outside any
    [with_token] scope).  Hot loops fetch it once per run and poll it
    every {!poll_interval} iterations. *)

val with_token : token -> (unit -> 'a) -> 'a
(** [with_token t f] runs [f] with [t] as the domain's current token,
    restoring the previous token on exit (including by exception). *)

val poll_interval : int
(** How many loop iterations a hot loop should run between two real
    {!check}s of its fetched token. *)

val tick : unit -> unit
(** Call-grained safepoint for code without a loop counter: spends one
    unit of a domain-local fuel counter and {!check}s the current token
    every [tick_interval] calls.  @raise Cancelled as {!check}. *)
