(** EPIC machine descriptions. *)

type cache_level = {
  size_words : int;
  line_words : int;
  assoc : int;
  extra_latency : int;
      (** extra cycles beyond an L1 hit when satisfied here *)
}

type t = {
  name : string;
  int_units : int;
  fp_units : int;
  mem_units : int;
  branch_units : int;
  gpr : int;
  fpr : int;
  pred_regs : int;
  mispredict_penalty : int;
  taken_branch_redirect : int;
      (** front-end bubble per taken control transfer, even when
          correctly predicted *)
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  memory_extra_latency : int;
  prefetch_queue : int;
      (** outstanding prefetch fills; overflow = drop + backpressure *)
  call_overhead_cycles : float;
      (** extra cycles per dynamic call, on top of the call latency the
          scheduler embeds in schedule lengths; 0 on all stock machines *)
}

val issue_width : t -> int

val table3 : t
(** The paper's Table 3 machine: 4 int / 2 fp / 2 mem / 1 branch units,
    64+64 registers, 2/7/35-cycle cache latencies, 5-cycle misprediction
    penalty. *)

val table3_regalloc : t
(** Table 3 with the register files halved to 32, the configuration the
    paper uses to stress the register allocator (Section 6). *)

val table3_narrow : t
(** Table 3 narrowed to 2+1+1+1 issue slots, used by the scheduling
    extension so the ranking under study actually decides schedules. *)

val itanium1 : t
(** Approximation of the Itanium I used by the prefetching study. *)

val itanium_small_l2 : t
(** [itanium1] with a smaller L2: the second target architecture of the
    prefetching cross-validation figure. *)
