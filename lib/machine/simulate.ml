(* Trace-driven EPIC timing simulation.

   The interpreter executes the (transformed, scheduled) program once and
   streams its dynamic events into the timing model:

     cycles = sum over executed blocks of the block's schedule length
            + per-load cache stalls beyond an L1 hit
            + mispredict penalty per mispredicted branch
            + a fixed call/return overhead per dynamic call.

   Schedule lengths come from the VLIW list scheduler and are indexed by
   the global block uid of the prepared layout.  This decoupled model
   captures the first-order effects the paper's heuristics trade off:
   issue slots and dependence height (schedule lengths), memory latency
   (cache stalls), and control transfer costs (mispredictions).

   [noise] injects multiplicative measurement noise, used by the
   prefetching study to model a real, non-reproducible machine. *)

type result = {
  cycles : float;
  output : float list;
  checksum : int;
  dynamic_instrs : int;
  branches : int;
  mispredicts : int;
  cache : Cache.stats;
}

let call_overhead = 12.0

let run ?(fuel = 30_000_000) ?(overrides = []) ?noise ~(config : Config.t)
    ~(schedule_cycles : int array) (layout : Profile.Layout.t) : result =
  if Array.length schedule_cycles < layout.Profile.Layout.n_blocks then
    invalid_arg "Simulate.run: schedule_cycles too short";
  let cache = Cache.create config in
  let predictor =
    Profile.Predictor.create ~n_sites:layout.Profile.Layout.n_branch_sites
  in
  let cycles = ref 0.0 in
  let penalty = float_of_int config.Config.mispredict_penalty in
  let redirect = float_of_int config.Config.taken_branch_redirect in
  let observer =
    {
      Profile.Interp.block_enter =
        (fun uid ->
          cycles := !cycles +. float_of_int schedule_cycles.(uid));
      branch =
        (fun site taken ->
          if taken then cycles := !cycles +. redirect;
          if Profile.Predictor.observe predictor ~site ~taken then
            cycles := !cycles +. penalty);
      mem =
        (fun kind addr ->
          match kind with
          | Profile.Interp.Mload ->
            cycles := !cycles +. float_of_int (Cache.load cache addr)
          | Profile.Interp.Mstore -> Cache.store cache addr
          | Profile.Interp.Mprefetch ->
            cycles := !cycles +. float_of_int (Cache.prefetch cache addr));
    }
  in
  let res = Profile.Interp.run ~observer ~fuel ~overrides layout in
  (* Dynamic call overhead: counted from the interpreter's step count of
     Call instructions is not directly exposed; approximate by charging it
     inside schedule lengths instead (the scheduler assigns calls a long
     latency).  Here we only add stochastic noise if requested. *)
  let cycles =
    match noise with
    | None -> !cycles
    | Some (rng, amplitude) ->
      let jitter = 1.0 +. (amplitude *. ((Random.State.float rng 2.0) -. 1.0)) in
      !cycles *. jitter
  in
  {
    cycles;
    output = res.Profile.Interp.output;
    checksum = Profile.Interp.checksum res.Profile.Interp.output;
    dynamic_instrs = res.Profile.Interp.steps;
    branches = predictor.Profile.Predictor.branches;
    mispredicts = predictor.Profile.Predictor.mispredicts;
    cache = Cache.stats cache;
  }
