(* Trace-driven EPIC timing simulation.

   The interpreter executes the (transformed, scheduled) program once and
   streams its dynamic events into the timing model:

     cycles = sum over executed blocks of the block's schedule length
            + per-load cache stalls beyond an L1 hit
            + mispredict penalty per mispredicted branch
            + redirect bubble per taken control transfer
            + config.call_overhead_cycles per dynamic call (0 on stock
              machines: the scheduler already embeds call latency in
              schedule lengths).

   Schedule lengths come from the VLIW list scheduler and are indexed by
   the global block uid of the prepared layout.  This decoupled model
   captures the first-order effects the paper's heuristics trade off:
   issue slots and dependence height (schedule lengths), memory latency
   (cache stalls), and control transfer costs (mispredictions).

   The same timing observer can be driven by either interpreter engine
   ([run]) or by a recorded event trace ([replay]); because the event
   sequence is identical, cycles are bit-identical across all three.

   [noise] injects multiplicative measurement noise, used by the
   prefetching study to model a real, non-reproducible machine. *)

type result = {
  cycles : float;
  output : float list;
  checksum : int;
  dynamic_instrs : int;
  branches : int;
  mispredicts : int;
  cache : Cache.stats;
}

type engine = [ `Fast | `Reference ]

(* The timing model as an observer over dynamic events. *)
let timing_observer ~(config : Config.t) ~(schedule_cycles : int array)
    ~(cache : Cache.t) ~(predictor : Profile.Predictor.t) (cycles : float ref)
    : Profile.Interp.observer =
  let penalty = float_of_int config.Config.mispredict_penalty in
  let redirect = float_of_int config.Config.taken_branch_redirect in
  let call_overhead = config.Config.call_overhead_cycles in
  {
    Profile.Interp.block_enter =
      (fun uid -> cycles := !cycles +. float_of_int schedule_cycles.(uid));
    branch =
      (fun site taken ->
        if taken then cycles := !cycles +. redirect;
        if Profile.Predictor.observe predictor ~site ~taken then
          cycles := !cycles +. penalty);
    mem =
      (fun kind addr ->
        match kind with
        | Profile.Interp.Mload ->
          cycles := !cycles +. float_of_int (Cache.load cache addr)
        | Profile.Interp.Mstore -> Cache.store cache addr
        | Profile.Interp.Mprefetch ->
          cycles := !cycles +. float_of_int (Cache.prefetch cache addr));
    call =
      (fun _ ->
        if call_overhead > 0.0 then cycles := !cycles +. call_overhead);
  }

let jittered ?noise cycles =
  match noise with
  | None -> cycles
  | Some (rng, amplitude) ->
    let jitter = 1.0 +. (amplitude *. (Random.State.float rng 2.0 -. 1.0)) in
    cycles *. jitter

let check_lengths ~schedule_cycles (layout : Profile.Layout.t) =
  if Array.length schedule_cycles < layout.Profile.Layout.n_blocks then
    invalid_arg "Simulate.run: schedule_cycles too short"

let assemble ~cycles ~output ~dynamic_instrs ~(predictor : Profile.Predictor.t)
    ~cache =
  {
    cycles;
    output;
    checksum = Profile.Interp.checksum output;
    dynamic_instrs;
    branches = predictor.Profile.Predictor.branches;
    mispredicts = predictor.Profile.Predictor.mispredicts;
    cache = Cache.stats cache;
  }

let run ?(engine = `Fast) ?(fuel = 30_000_000) ?(overrides = []) ?noise
    ~(config : Config.t) ~(schedule_cycles : int array)
    (layout : Profile.Layout.t) : result =
  check_lengths ~schedule_cycles layout;
  let cache = Cache.create config in
  let predictor =
    Profile.Predictor.create ~n_sites:layout.Profile.Layout.n_branch_sites
  in
  let cycles = ref 0.0 in
  let observer = timing_observer ~config ~schedule_cycles ~cache ~predictor cycles in
  let interp =
    match engine with
    | `Fast -> Profile.Interp.run
    | `Reference -> Profile.Interp.run_reference
  in
  let res = interp ~observer ~fuel ~overrides layout in
  assemble
    ~cycles:(jittered ?noise !cycles)
    ~output:res.Profile.Interp.output
    ~dynamic_instrs:res.Profile.Interp.steps ~predictor ~cache

(* Simulate and record the dynamic event stream.  Returns the noise-free
   result plus the trace when it fit the event budget; the recording
   wrapper forwards events unchanged, so the result is bit-identical to
   [run] without noise. *)
let run_traced ?(fuel = 30_000_000) ?(overrides = []) ?max_trace_events
    ~(config : Config.t) ~(schedule_cycles : int array)
    (layout : Profile.Layout.t) : result * Trace.t option =
  check_lengths ~schedule_cycles layout;
  let cache = Cache.create config in
  let predictor =
    Profile.Predictor.create ~n_sites:layout.Profile.Layout.n_branch_sites
  in
  let cycles = ref 0.0 in
  let timing = timing_observer ~config ~schedule_cycles ~cache ~predictor cycles in
  let tr =
    Trace.create ?max_events:max_trace_events
      ~n_blocks:layout.Profile.Layout.n_blocks
      ~n_branch_sites:layout.Profile.Layout.n_branch_sites ()
  in
  let observer = Trace.recording_observer tr timing in
  let res = Profile.Interp.run ~observer ~fuel ~overrides layout in
  Trace.finish tr res;
  let result =
    assemble ~cycles:!cycles ~output:res.Profile.Interp.output
      ~dynamic_instrs:res.Profile.Interp.steps ~predictor ~cache
  in
  (result, if Trace.complete tr then Some tr else None)

(* Re-time a recorded run under (possibly different) schedule lengths by
   walking the event array instead of re-interpreting.  Noise-free. *)
let replay ~(config : Config.t) ~(schedule_cycles : int array) (tr : Trace.t) :
    result =
  (* An overflowed recording is a prefix of the run: re-timing it would
     silently under-count cycles, so reject it up front (Trace.replay
     would also raise, but only after cache/predictor setup). *)
  if not (Trace.complete tr) then
    invalid_arg "Simulate.replay: incomplete trace (event budget overflowed)";
  if Array.length schedule_cycles < tr.Trace.n_blocks then
    invalid_arg "Simulate.replay: schedule_cycles too short";
  let cache = Cache.create config in
  let predictor = Profile.Predictor.create ~n_sites:tr.Trace.n_branch_sites in
  let cycles = ref 0.0 in
  let observer = timing_observer ~config ~schedule_cycles ~cache ~predictor cycles in
  Trace.replay tr observer;
  assemble ~cycles:!cycles ~output:tr.Trace.output
    ~dynamic_instrs:tr.Trace.steps ~predictor ~cache
