(* Set-associative LRU cache hierarchy with software prefetch support.

   Each level is a set-associative array of line tags with LRU replacement
   implemented as per-line last-use timestamps.  A load probes L1, L2, L3
   and main memory in order, fills the line into every level it missed in,
   and reports the extra stall cycles of the level that hit.  Stores are
   buffered (no stall) and write-allocate.  Prefetches fill like loads but
   stall nothing; at most [prefetch_queue] prefetches may be in flight per
   [drain] window — the rest are dropped, modelling memory-queue
   saturation. *)

type level = {
  cfg : Config.cache_level;
  sets : int;
  tags : int array;          (* sets * assoc; -1 = invalid *)
  last_use : int array;
  mutable clock : int;
}

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
  mutable prefetches_dropped : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable memory_accesses : int;
  mutable stall_cycles : int;
}

type t = {
  levels : level array;      (* l1, l2, l3 *)
  memory_extra : int;
  prefetch_queue : int;
  mutable inflight_prefetches : int;
  stats : stats;
}

let make_level (cfg : Config.cache_level) : level =
  let sets = max 1 (cfg.size_words / (cfg.line_words * cfg.assoc)) in
  {
    cfg;
    sets;
    tags = Array.make (sets * cfg.assoc) (-1);
    last_use = Array.make (sets * cfg.assoc) 0;
    clock = 0;
  }

let create (cfg : Config.t) : t =
  {
    levels = [| make_level cfg.l1; make_level cfg.l2; make_level cfg.l3 |];
    memory_extra = cfg.memory_extra_latency;
    prefetch_queue = cfg.prefetch_queue;
    inflight_prefetches = 0;
    stats =
      {
        loads = 0;
        stores = 0;
        prefetches = 0;
        prefetches_dropped = 0;
        l1_hits = 0;
        l2_hits = 0;
        l3_hits = 0;
        memory_accesses = 0;
        stall_cycles = 0;
      };
  }

(* Probe one level; on hit, refresh LRU and return true.  On miss return
   false without filling (fill happens separately so we can fill all missed
   levels once the hit level is known). *)
let probe (l : level) (addr : int) : bool =
  let line = addr / l.cfg.line_words in
  let set = line mod l.sets in
  let base = set * l.cfg.assoc in
  l.clock <- l.clock + 1;
  let rec scan i =
    if i >= l.cfg.assoc then false
    else if l.tags.(base + i) = line then begin
      l.last_use.(base + i) <- l.clock;
      true
    end
    else scan (i + 1)
  in
  scan 0

let fill (l : level) (addr : int) : unit =
  let line = addr / l.cfg.line_words in
  let set = line mod l.sets in
  let base = set * l.cfg.assoc in
  l.clock <- l.clock + 1;
  (* Find an invalid way or the LRU way. *)
  let victim = ref 0 in
  let oldest = ref max_int in
  (try
     for i = 0 to l.cfg.assoc - 1 do
       if l.tags.(base + i) = -1 then begin
         victim := i;
         raise Exit
       end;
       if l.last_use.(base + i) < !oldest then begin
         oldest := l.last_use.(base + i);
         victim := i
       end
     done
   with Exit -> ());
  l.tags.(base + !victim) <- line;
  l.last_use.(base + !victim) <- l.clock

(* Where does this access hit?  Fills all levels above the hit level. *)
let lookup_and_fill (t : t) (addr : int) : int =
  if probe t.levels.(0) addr then begin
    t.stats.l1_hits <- t.stats.l1_hits + 1;
    t.levels.(0).cfg.extra_latency
  end
  else if probe t.levels.(1) addr then begin
    t.stats.l2_hits <- t.stats.l2_hits + 1;
    fill t.levels.(0) addr;
    t.levels.(1).cfg.extra_latency
  end
  else if probe t.levels.(2) addr then begin
    t.stats.l3_hits <- t.stats.l3_hits + 1;
    fill t.levels.(0) addr;
    fill t.levels.(1) addr;
    t.levels.(2).cfg.extra_latency
  end
  else begin
    t.stats.memory_accesses <- t.stats.memory_accesses + 1;
    fill t.levels.(0) addr;
    fill t.levels.(1) addr;
    fill t.levels.(2) addr;
    t.memory_extra
  end

(* DELIBERATE MODELLING CHOICE (see DESIGN.md): the queue retires entries
   only when the pipeline stalls for a completed demand miss — a
   primitive, non-work-conserving MSHR.  A fully work-conserving queue
   (retiring on the first demand touch of each prefetched line) makes
   sustained multi-stream prefetching uniformly beneficial and erases the
   "ORC overzealously prefetches" phenomenon the paper reports from its
   real Itanium; this model reproduces it: loops with many concurrent
   reference streams saturate the queue and lose, few-stream loops win. *)
let load (t : t) (addr : int) : int =
  t.stats.loads <- t.stats.loads + 1;
  let stall = lookup_and_fill t addr in
  if stall > 0 && t.inflight_prefetches > 0 then
    t.inflight_prefetches <- t.inflight_prefetches - 1;
  t.stats.stall_cycles <- t.stats.stall_cycles + stall;
  stall

let store (t : t) (addr : int) : unit =
  t.stats.stores <- t.stats.stores + 1;
  ignore (lookup_and_fill t addr)

(* Backpressure paid when a prefetch finds the memory queue full: the
   in-order pipeline stalls until an entry frees, and the prefetch is
   dropped without filling anything.  This is the "saturate memory
   queues" failure mode of overzealous prefetching the paper describes;
   it is what makes issuing a prefetch per stream in a 12-stream loop a
   pessimization while a selective prefetcher wins. *)
let queue_full_backpressure = 8

let prefetch (t : t) (addr : int) : int =
  t.stats.prefetches <- t.stats.prefetches + 1;
  if probe t.levels.(0) addr then
    (* Redundant prefetch of a resident line: consumed an issue slot but
       no memory transaction. *)
    0
  else if t.inflight_prefetches >= t.prefetch_queue then begin
    t.stats.prefetches_dropped <- t.stats.prefetches_dropped + 1;
    t.stats.stall_cycles <- t.stats.stall_cycles + queue_full_backpressure;
    queue_full_backpressure
  end
  else begin
    t.inflight_prefetches <- t.inflight_prefetches + 1;
    ignore (lookup_and_fill t addr);
    0
  end

let stats t = t.stats
