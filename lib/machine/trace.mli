(** Compact dynamic-event traces for simulation replay.

    An interpreter run's observer stream is packed into one int array
    (tag in the low 3 bits, payload above).  Replaying it through a
    fresh timing observer reproduces the exact event sequence, so
    cycles are bit-identical to re-interpreting.  A trace is only valid
    for the (program, dataset, fuel) it was recorded from — keying is
    the caller's job ({!Driver.Simcache}). *)

type t = {
  mutable events : int array;
  mutable n : int;
  max_events : int;
  mutable overflowed : bool;
  n_blocks : int;
  n_branch_sites : int;
  mutable output : float list;
  mutable return_value : float;
  mutable steps : int;
  mutable calls : int;
  mutable complete : bool;
}

val default_max_events : int
(** 2^23 events (64 MiB of ints); longer runs overflow and record no
    trace, degrading gracefully to full simulation. *)

val create : ?max_events:int -> n_blocks:int -> n_branch_sites:int -> unit -> t

val recording_observer : t -> Profile.Interp.observer -> Profile.Interp.observer
(** Record every event while forwarding it to the inner observer
    unchanged, so a live simulation is traced without timing impact. *)

val finish : t -> Profile.Interp.result -> unit
(** Capture the interpreter result; marks the trace complete unless the
    event budget overflowed, and trims the event array. *)

val complete : t -> bool
val events : t -> int
val calls : t -> int

val replay : t -> Profile.Interp.observer -> unit
(** Feed the recorded events through [obs] in original order.
    @raise Invalid_argument on an incomplete trace. *)
