(* Compact dynamic-event traces for simulation replay.

   One interpreter run's observer stream — block entries, branch
   outcomes, resolved memory addresses, dynamic calls — is packed into a
   single int array, one event per int: the tag lives in the low 3 bits,
   the payload (uid / site / address / callee index) in the rest.  Word
   addresses and ids are far below 2^60, and a pre-trap address can be
   negative, which [asr] preserves.

   Replaying a trace through a fresh timing observer performs the exact
   event sequence of the original run, so `Cache`/`Predictor` state — and
   therefore cycles — are bit-identical to re-interpreting, at the cost
   of a tight array walk instead of tens of millions of interpreter
   steps.  A trace is only valid for the same (program, dataset, fuel)
   triple it was recorded from; keying is the caller's job
   (`Driver.Simcache`). *)

let tag_block = 0
let tag_branch_nt = 1
let tag_branch_t = 2
let tag_load = 3
let tag_store = 4
let tag_prefetch = 5
let tag_call = 6

type t = {
  mutable events : int array;
  mutable n : int;
  max_events : int;
  mutable overflowed : bool;
  (* Sized from the layout so replay can rebuild the timing model. *)
  n_blocks : int;
  n_branch_sites : int;
  (* Interpreter result captured alongside the events. *)
  mutable output : float list;
  mutable return_value : float;
  mutable steps : int;
  mutable calls : int;
  mutable complete : bool;
}

let default_max_events = 1 lsl 23

let create ?(max_events = default_max_events) ~n_blocks ~n_branch_sites () =
  {
    (* never allocate past the budget, or a budget below the initial
       capacity would not be enforced (push only overflows when the
       array is full at >= max_events) *)
    events = Array.make (max 1 (min 4096 max_events)) 0;
    n = 0;
    max_events;
    overflowed = false;
    n_blocks;
    n_branch_sites;
    output = [];
    return_value = 0.0;
    steps = 0;
    calls = 0;
    complete = false;
  }

let push tr v =
  if not tr.overflowed then begin
    let cap = Array.length tr.events in
    if tr.n = cap then
      if cap >= tr.max_events then tr.overflowed <- true
      else begin
        let events = Array.make (min tr.max_events (2 * cap)) 0 in
        Array.blit tr.events 0 events 0 tr.n;
        tr.events <- events
      end;
    if not tr.overflowed then begin
      tr.events.(tr.n) <- v;
      tr.n <- tr.n + 1
    end
  end

(* Record into [tr] while forwarding every event to [inner] unchanged, so
   a live simulation can be traced without perturbing its timing. *)
let recording_observer tr (inner : Profile.Interp.observer) :
    Profile.Interp.observer =
  {
    Profile.Interp.block_enter =
      (fun uid ->
        push tr ((uid lsl 3) lor tag_block);
        inner.Profile.Interp.block_enter uid);
    branch =
      (fun site taken ->
        push tr ((site lsl 3) lor (if taken then tag_branch_t else tag_branch_nt));
        inner.Profile.Interp.branch site taken);
    mem =
      (fun kind addr ->
        let tag =
          match kind with
          | Profile.Interp.Mload -> tag_load
          | Profile.Interp.Mstore -> tag_store
          | Profile.Interp.Mprefetch -> tag_prefetch
        in
        push tr ((addr lsl 3) lor tag);
        inner.Profile.Interp.mem kind addr);
    call =
      (fun findex ->
        tr.calls <- tr.calls + 1;
        push tr ((findex lsl 3) lor tag_call);
        inner.Profile.Interp.call findex);
  }

let finish tr (res : Profile.Interp.result) =
  tr.output <- res.Profile.Interp.output;
  tr.return_value <- res.Profile.Interp.return_value;
  tr.steps <- res.Profile.Interp.steps;
  tr.complete <- not tr.overflowed;
  if tr.complete && Array.length tr.events > tr.n then
    tr.events <- Array.sub tr.events 0 tr.n

let complete tr = tr.complete
let events tr = tr.n
let calls tr = tr.calls

let replay tr (obs : Profile.Interp.observer) =
  if not tr.complete then invalid_arg "Trace.replay: incomplete trace";
  let events = tr.events in
  (* Cancellation safepoint: replay dispatch is much cheaper than a
     simulated block, so poll at a coarser stride than the interpreter;
     the token is fetched once and skipped entirely when inert. *)
  let tok = Gp.Cancel.current () in
  let polled = Gp.Cancel.active tok in
  for i = 0 to tr.n - 1 do
    if polled && i land 0xFFFF = 0xFFFF then Gp.Cancel.check tok;
    let v = events.(i) in
    let payload = v asr 3 in
    match v land 7 with
    | 0 (* tag_block *) -> obs.Profile.Interp.block_enter payload
    | 1 (* tag_branch_nt *) -> obs.Profile.Interp.branch payload false
    | 2 (* tag_branch_t *) -> obs.Profile.Interp.branch payload true
    | 3 (* tag_load *) -> obs.Profile.Interp.mem Profile.Interp.Mload payload
    | 4 (* tag_store *) -> obs.Profile.Interp.mem Profile.Interp.Mstore payload
    | 5 (* tag_prefetch *) ->
      obs.Profile.Interp.mem Profile.Interp.Mprefetch payload
    | _ (* tag_call *) -> obs.Profile.Interp.call payload
  done
