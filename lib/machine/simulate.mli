(** Trace-driven EPIC timing simulation.

    The interpreter executes the transformed, scheduled program once and
    streams its dynamic events into the timing model:

    cycles = sum of executed blocks' schedule lengths
           + cache stalls beyond an L1 hit per load
           + prefetch-queue backpressure
           + misprediction penalty per mispredicted branch
           + a redirect bubble per taken control transfer.

    [noise] injects multiplicative measurement noise, modelling the real,
    non-reproducible Itanium of the paper's prefetching study. *)

type result = {
  cycles : float;
  output : float list;
  checksum : int;
  dynamic_instrs : int;
  branches : int;
  mispredicts : int;
  cache : Cache.stats;
}

val call_overhead : float
(** Documentation of the per-call cost embedded in schedule lengths. *)

val run :
  ?fuel:int -> ?overrides:(string * float array) list ->
  ?noise:Random.State.t * float -> config:Config.t ->
  schedule_cycles:int array -> Profile.Layout.t -> result
(** [schedule_cycles] maps each global block uid of the prepared layout to
    its VLIW schedule length.
    @raise Invalid_argument if the array is too short. *)
