(** Trace-driven EPIC timing simulation.

    The interpreter executes the transformed, scheduled program once and
    streams its dynamic events into the timing model:

    cycles = sum of executed blocks' schedule lengths
           + cache stalls beyond an L1 hit per load
           + prefetch-queue backpressure
           + misprediction penalty per mispredicted branch
           + a redirect bubble per taken control transfer
           + [config.call_overhead_cycles] per dynamic call (0 on stock
             machines: call latency is already in schedule lengths).

    The same timing model can also consume a recorded event trace
    ({!replay}); the event sequence is identical, so cycles are
    bit-identical to re-interpreting.

    [noise] injects multiplicative measurement noise, modelling the real,
    non-reproducible Itanium of the paper's prefetching study. *)

type result = {
  cycles : float;
  output : float list;
  checksum : int;
  dynamic_instrs : int;
  branches : int;
  mispredicts : int;
  cache : Cache.stats;
}

type engine = [ `Fast | `Reference ]
(** [`Fast] drives the pre-decoded interpreter, [`Reference] the original
    tree-walker; both produce bit-identical results. *)

val jittered : ?noise:Random.State.t * float -> float -> float
(** Apply the multiplicative measurement-noise model to a cycle count;
    identity without [noise].  Exposed so noise can be layered onto
    shared noise-free results with the exact float operations [run]
    would have performed. *)

val run :
  ?engine:engine -> ?fuel:int -> ?overrides:(string * float array) list ->
  ?noise:Random.State.t * float -> config:Config.t ->
  schedule_cycles:int array -> Profile.Layout.t -> result
(** [schedule_cycles] maps each global block uid of the prepared layout to
    its VLIW schedule length.
    @raise Invalid_argument if the array is too short. *)

val run_traced :
  ?fuel:int -> ?overrides:(string * float array) list ->
  ?max_trace_events:int -> config:Config.t -> schedule_cycles:int array ->
  Profile.Layout.t -> result * Trace.t option
(** Simulate (noise-free, fast engine) while recording the dynamic event
    stream.  Returns the trace unless it outgrew [max_trace_events]
    (default {!Trace.default_max_events}). *)

val replay :
  config:Config.t -> schedule_cycles:int array -> Trace.t -> result
(** Re-time a recorded run under (possibly different) schedule lengths by
    walking the event array; bit-identical to the simulation that would
    have recorded the same events.  Noise-free.
    @raise Invalid_argument if the array is too short for the trace. *)
