(* EPIC machine description.  [table3] is the architecture of Table 3 in
   the paper (an Itanium-like machine used for the hyperblock and register
   allocation studies); [table3_regalloc] is the same machine with the
   register files halved to 32+32, which the paper uses to stress the
   register allocator; [itanium1] approximates the real Itanium I used for
   the prefetching study. *)

type cache_level = {
  size_words : int;
  line_words : int;
  assoc : int;
  (* Extra cycles beyond an L1 hit when the access is satisfied here. *)
  extra_latency : int;
}

type t = {
  name : string;
  int_units : int;
  fp_units : int;
  mem_units : int;
  branch_units : int;
  gpr : int;
  fpr : int;
  pred_regs : int;
  mispredict_penalty : int;
  (* Front-end redirect bubble paid by every taken control transfer, even
     correctly predicted ones (fetch discontinuity on a clustered EPIC
     front end). *)
  taken_branch_redirect : int;
  l1 : cache_level;
  l2 : cache_level;
  l3 : cache_level;
  memory_extra_latency : int;
  (* Maximum outstanding prefetches; further prefetches are dropped and
     still consume their issue slot (memory-queue saturation). *)
  prefetch_queue : int;
  (* Extra cycles charged per dynamic call by the timing model, on top of
     the call latency the scheduler already embeds in schedule lengths
     (Instr.latency of Call).  0 on every stock machine — setting it
     would double-count — but available to model a deeper call/return
     bubble. *)
  call_overhead_cycles : float;
}

let issue_width c = c.int_units + c.fp_units + c.mem_units + c.branch_units

let table3 =
  {
    name = "table3-epic";
    int_units = 4;
    fp_units = 2;
    mem_units = 2;
    branch_units = 1;
    gpr = 64;
    fpr = 64;
    pred_regs = 256;
    mispredict_penalty = 5;
    taken_branch_redirect = 1;
    (* 16 KiB L1, 32-byte lines (8 words), 4-way; L2 256 KiB 8-way;
       L3 2 MiB 8-way.  Latencies from Table 3: 2/7/35 cycles, i.e. 0/5/33
       beyond the pipelined L1 hit already in the schedule. *)
    l1 = { size_words = 4096; line_words = 8; assoc = 4; extra_latency = 0 };
    l2 = { size_words = 65536; line_words = 8; assoc = 8; extra_latency = 5 };
    l3 = { size_words = 524288; line_words = 8; assoc = 8; extra_latency = 33 };
    memory_extra_latency = 120;
    prefetch_queue = 3;
    call_overhead_cycles = 0.0;
  }

let table3_regalloc = { table3 with name = "table3-32reg"; gpr = 32; fpr = 32 }

(* A narrow variant used by the scheduling extension: with 2+1+1+1 issue
   slots the ready set regularly exceeds the machine width, so the list
   scheduler's ranking actually decides the schedule (on the full Table 3
   machine almost every ready instruction issues immediately and the
   ranking is moot) — the same stress-the-heuristic move the paper makes
   by halving the register files for the allocation study. *)
let table3_narrow =
  {
    table3 with
    name = "table3-narrow";
    int_units = 2;
    fp_units = 1;
    mem_units = 1;
    branch_units = 1;
  }

let itanium1 =
  {
    name = "itanium1";
    int_units = 4;
    fp_units = 2;
    mem_units = 2;
    branch_units = 3;
    gpr = 128;
    fpr = 128;
    pred_regs = 64;
    mispredict_penalty = 9;
    taken_branch_redirect = 1;
    l1 = { size_words = 4096; line_words = 8; assoc = 4; extra_latency = 0 };
    l2 = { size_words = 24576; line_words = 16; assoc = 6; extra_latency = 6 };
    l3 =
      { size_words = 1048576; line_words = 16; assoc = 4; extra_latency = 21 };
    memory_extra_latency = 100;
    prefetch_queue = 3;
    call_overhead_cycles = 0.0;
  }

(* A variant of [itanium1] with a smaller L2, used by the prefetching
   cross-validation figure ("results from two target architectures"). *)
let itanium_small_l2 =
  {
    itanium1 with
    name = "itanium-small-l2";
    l2 = { size_words = 8192; line_words = 16; assoc = 4; extra_latency = 6 };
  }
