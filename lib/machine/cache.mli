(** Set-associative LRU cache hierarchy with software-prefetch support.

    Loads probe L1/L2/L3/memory, fill upward, and report extra stall
    cycles.  Stores are buffered (no stall) and write-allocate.
    Prefetches that miss L1 occupy a bounded memory queue; completed
    demand misses retire entries; a prefetch arriving at a full queue is
    dropped and stalls the in-order pipe — the "saturate memory queues"
    failure mode of overzealous prefetching the paper describes. *)

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
  mutable prefetches_dropped : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable memory_accesses : int;
  mutable stall_cycles : int;
}

type t

val create : Config.t -> t

val queue_full_backpressure : int
(** Stall cycles charged per dropped prefetch. *)

val load : t -> int -> int
(** [load t addr] returns the stall cycles beyond a pipelined L1 hit. *)

val store : t -> int -> unit

val prefetch : t -> int -> int
(** Returns backpressure stall cycles (0 unless the queue was full).
    Prefetching a resident line is free and occupies no queue entry. *)

val stats : t -> stats
