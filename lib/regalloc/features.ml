(* Features for the register-allocation priority function.

   The paper replaces Equation (2) — the per-block savings estimate of
   priority-based coloring — with a GP expression, while keeping the
   normalizing sum of Equation (3) intact.  The expression is therefore
   evaluated once per (live range, block) pair. *)

let feature_set : Gp.Feature_set.t =
  Gp.Feature_set.make
    ~reals:
      [
        (* per-block *)
        "uses";              (* uses of the range's register in this block *)
        "defs";              (* defs in this block *)
        "w";                 (* estimated execution frequency *)
        "loop_depth";        (* nesting depth of this block *)
        "block_ops";         (* block size in instructions *)
        "calls_in_block";    (* dynamic-cost calls in this block *)
        (* per-range *)
        "range_blocks";      (* N: number of blocks in the live range *)
        "range_uses";        (* total uses over the range *)
        "range_defs";        (* total defs over the range *)
        "degree";            (* interference-graph degree *)
      ]
    ~bools:[ "is_param"; "spans_call"; "in_loop" ]

(* Trimaran/Elcor's baseline savings function, Equation (2):
   savings_i = w_i * (LDsave * uses_i + STsave * defs_i), with the load /
   store savings of the Table 3 machine (2-cycle loads, 1-cycle buffered
   stores). *)
let baseline_source = "(mul w (add (mul 2.0 uses) defs))"

let baseline_expr : Gp.Expr.rexpr =
  Gp.Sexp.parse_real feature_set baseline_source

let baseline_genome : Gp.Expr.genome = Gp.Expr.Real baseline_expr
