(** Backward liveness dataflow at basic-block granularity.  Predicated
    definitions do not kill (the previous value may flow through a
    nullified write). *)

type t = {
  n_regs : int;
  live_in : bool array array;   (** block index -> register -> live *)
  live_out : bool array array;
  use_ : bool array array;      (** upward-exposed uses *)
  def : bool array array;       (** unconditional local definitions *)
}

val term_uses : Ir.Func.terminator -> Ir.Types.reg list

val compute : Ir.Func.t -> Ir.Cfg.t -> t

val live_in_block : t -> int -> Ir.Types.reg -> bool
(** Live-in, live-out, or locally accessed in the block. *)
