(* Priority-based coloring register allocation [Chow & Hennessy 90].

   A live range is one virtual register together with the set of blocks it
   is live in.  Ranges interfere when their block sets overlap.  Ranges
   are allocated in priority order — priority(lr) = sum over the range's
   blocks of a per-block savings function, divided by the range size
   (Equation (3)); the savings function (Equation (2) as the baseline, or
   a GP expression) is the priority function under study.  Ranges that
   cannot be colored are spilled: every use gets a preceding frame load
   and every def a following frame store, both inheriting the
   instruction's guard.

   Physical registers are modelled as a single unified file of
   [machine.gpr] registers (see DESIGN.md); the allocator's product that
   the rest of the pipeline consumes is the spill code, whose schedule and
   memory-system costs the simulator measures. *)

type live_range = {
  reg : Ir.Types.reg;
  blocks : int list;              (* block indices where live *)
  uses_per_block : int array;
  defs_per_block : int array;
  total_uses : int;
  total_defs : int;
  is_param : bool;
  spans_call : bool;
  mutable degree : int;
  mutable priority : float;
  mutable color : int;            (* -1 = unallocated, -2 = spilled *)
}

type result = {
  ranges : live_range list;
  spilled : Ir.Types.reg list;
  n_colors_used : int;
}

(* The priority function: given a feature environment for one
   (range, block) pair, the savings for that block. *)
type savings_fn = Gp.Feature_set.env -> float

let baseline_savings : savings_fn =
 fun env -> Gp.Eval.real env Features.baseline_expr

(* Compiled once per [savings_of_expr]; the allocator calls the result
   for every (live range, block) pair. *)
let savings_of_expr ?(compiled = true) (e : Gp.Expr.rexpr) : savings_fn =
  if compiled then Gp.Evalc.real_fn e else fun env -> Gp.Eval.real env e

(* Vectorized form: all of a function's (range, block) feature vectors
   through one batch evaluation, instruction dispatch amortised across
   the function instead of paid per pair. *)
type savings_batch = Gp.Feature_set.env array -> float array

let savings_batch_of_expr ?(compiled = true) (e : Gp.Expr.rexpr) :
    savings_batch =
  if compiled then begin
    let p = Gp.Evalc.compile_real e in
    fun envs -> Gp.Evalc.run_batch p envs
  end
  else fun envs -> Array.map (fun env -> Gp.Eval.real env e) envs

let block_weight depth = 10.0 ** float_of_int (min depth 3)

let build_ranges (f : Ir.Func.t) (g : Ir.Cfg.t) (live : Liveness.t) :
    live_range list =
  let n = Ir.Cfg.n_blocks g in
  let n_regs = live.Liveness.n_regs in
  let uses = Array.make_matrix n_regs n 0 in
  let defs = Array.make_matrix n_regs n 0 in
  let spans_call = Array.make n_regs false in
  for bi = 0 to n - 1 do
    let b = Ir.Cfg.block_of g bi in
    let block_has_call =
      List.exists
        (fun (i : Ir.Instr.t) -> Ir.Instr.is_call i.Ir.Instr.kind)
        b.Ir.Func.instrs
    in
    List.iter
      (fun (i : Ir.Instr.t) ->
        List.iter
          (fun r -> uses.(r).(bi) <- uses.(r).(bi) + 1)
          (Ir.Instr.uses i.Ir.Instr.kind);
        match Ir.Instr.def i.Ir.Instr.kind with
        | Some d -> defs.(d).(bi) <- defs.(d).(bi) + 1
        | None -> ())
      b.Ir.Func.instrs;
    List.iter
      (fun r -> uses.(r).(bi) <- uses.(r).(bi) + 1)
      (Liveness.term_uses b.Ir.Func.term);
    if block_has_call then
      for r = 0 to n_regs - 1 do
        if live.Liveness.live_in.(bi).(r) && live.Liveness.live_out.(bi).(r)
        then spans_call.(r) <- true
      done
  done;
  List.filter_map
    (fun r ->
      let blocks =
        List.filter (fun bi -> Liveness.live_in_block live bi r)
          (List.init n Fun.id)
      in
      if blocks = [] then None
      else
        Some
          {
            reg = r;
            blocks;
            uses_per_block = Array.init n (fun bi -> uses.(r).(bi));
            defs_per_block = Array.init n (fun bi -> defs.(r).(bi));
            total_uses = Array.fold_left ( + ) 0 uses.(r);
            total_defs = Array.fold_left ( + ) 0 defs.(r);
            is_param = List.mem r f.Ir.Func.params;
            spans_call = spans_call.(r);
            degree = 0;
            priority = 0.0;
            color = -1;
          })
    (List.init n_regs (fun r -> r + 1) |> List.filter (fun r -> r < n_regs))

let interferes (a : live_range) (b : live_range) =
  List.exists (fun bi -> List.mem bi b.blocks) a.blocks

(* The feature vector of one (range, block) pair. *)
let block_env (g : Ir.Cfg.t) depth (calls_per_block : int array)
    (lr : live_range) ~n_blocks bi : Gp.Feature_set.env =
  let fs = Features.feature_set in
  let env = Gp.Feature_set.empty_env fs in
  let set = Gp.Feature_set.set_real fs env in
  set "uses" (float_of_int lr.uses_per_block.(bi));
  set "defs" (float_of_int lr.defs_per_block.(bi));
  set "w" (block_weight depth.(bi));
  set "loop_depth" (float_of_int depth.(bi));
  set "block_ops"
    (float_of_int (List.length (Ir.Cfg.block_of g bi).Ir.Func.instrs));
  set "calls_in_block" (float_of_int calls_per_block.(bi));
  set "range_blocks" n_blocks;
  set "range_uses" (float_of_int lr.total_uses);
  set "range_defs" (float_of_int lr.total_defs);
  set "degree" (float_of_int lr.degree);
  let setb = Gp.Feature_set.set_bool fs env in
  setb "is_param" lr.is_param;
  setb "spans_call" lr.spans_call;
  setb "in_loop" (depth.(bi) > 0);
  env

(* Evaluate the priority of one range: Equation (3). *)
let range_priority (savings : savings_fn) (g : Ir.Cfg.t) depth
    (calls_per_block : int array) (lr : live_range) : float =
  let n_blocks = float_of_int (List.length lr.blocks) in
  let total =
    List.fold_left
      (fun acc bi ->
        acc +. savings (block_env g depth calls_per_block lr ~n_blocks bi))
      0.0 lr.blocks
  in
  total /. Float.max 1.0 n_blocks

(* --- Spill code insertion ---------------------------------------------- *)

let insert_spills (f : Ir.Func.t) (spilled : Ir.Types.reg list) : unit =
  if spilled <> [] then begin
    let slot = Hashtbl.create 8 in
    List.iteri
      (fun i r -> Hashtbl.replace slot r (f.Ir.Func.frame_size + i))
      spilled;
    f.Ir.Func.frame_size <- f.Ir.Func.frame_size + List.length spilled;
    let fname = f.Ir.Func.fname in
    let addr r = Ir.Builder.frame_addr ~fname ~slot:(Hashtbl.find slot r) in
    let is_spilled r = Hashtbl.mem slot r in
    List.iter
      (fun (b : Ir.Func.block) ->
        let out = ref [] in
        let emit ?(guard = Ir.Types.p_true) kind =
          out :=
            { Ir.Instr.id = Ir.Func.fresh_instr_id f; guard; kind } :: !out
        in
        List.iter
          (fun (i : Ir.Instr.t) ->
            let guard = i.Ir.Instr.guard in
            let used =
              List.sort_uniq compare
                (List.filter is_spilled (Ir.Instr.uses i.Ir.Instr.kind))
            in
            List.iter
              (fun r -> emit ~guard (Ir.Instr.Load (r, addr r)))
              used;
            out := i :: !out;
            match Ir.Instr.def i.Ir.Instr.kind with
            | Some d when is_spilled d ->
              emit ~guard (Ir.Instr.Store (addr d, Ir.Types.Reg d))
            | _ -> ())
          b.Ir.Func.instrs;
        (* Terminator uses of spilled registers reload at block end. *)
        List.iter
          (fun r ->
            if is_spilled r then emit (Ir.Instr.Load (r, addr r)))
          (Liveness.term_uses b.Ir.Func.term);
        b.Ir.Func.instrs <- List.rev !out)
      f.Ir.Func.blocks;
    (* Spilled parameters receive their incoming value at function entry. *)
    let entry = Ir.Func.entry f in
    let param_stores =
      List.filter_map
        (fun r ->
          if is_spilled r then
            Some
              {
                Ir.Instr.id = Ir.Func.fresh_instr_id f;
                guard = Ir.Types.p_true;
                kind = Ir.Instr.Store (addr r, Ir.Types.Reg r);
              }
          else None)
        f.Ir.Func.params
    in
    entry.Ir.Func.instrs <- param_stores @ entry.Ir.Func.instrs
  end

(* --- Driver ------------------------------------------------------------- *)

let run_func ?(savings = baseline_savings) ?savings_batch
    ~(machine : Machine.Config.t) (f : Ir.Func.t) : result =
  let g = Ir.Cfg.build f in
  let live = Liveness.compute f g in
  let depth = Ir.Cfg.loop_depth g in
  let n = Ir.Cfg.n_blocks g in
  let calls_per_block =
    Array.init n (fun bi ->
        List.length
          (List.filter
             (fun (i : Ir.Instr.t) -> Ir.Instr.is_call i.Ir.Instr.kind)
             (Ir.Cfg.block_of g bi).Ir.Func.instrs))
  in
  let ranges = build_ranges f g live in
  let arr = Array.of_list ranges in
  let m = Array.length arr in
  (* Interference degrees. *)
  let neighbors = Array.make m [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if interferes arr.(i) arr.(j) then begin
        neighbors.(i) <- j :: neighbors.(i);
        neighbors.(j) <- i :: neighbors.(j)
      end
    done
  done;
  Array.iteri
    (fun i lr -> lr.degree <- List.length neighbors.(i))
    arr;
  (match savings_batch with
  | None ->
    Array.iter
      (fun lr ->
        lr.priority <- range_priority savings g depth calls_per_block lr)
      arr
  | Some batch ->
    (* Vectorized Equation (3): every (range, block) pair's feature
       vector in range-then-block order through one batch call, then
       per-range sums folded left in exactly [range_priority]'s
       order — bit-identical to the pointwise path. *)
    let envs =
      Array.concat
        (Array.to_list
           (Array.map
              (fun lr ->
                let n_blocks = float_of_int (List.length lr.blocks) in
                Array.of_list
                  (List.map
                     (block_env g depth calls_per_block lr ~n_blocks)
                     lr.blocks))
              arr))
    in
    let vals = batch envs in
    let off = ref 0 in
    Array.iter
      (fun lr ->
        let nb = List.length lr.blocks in
        let total = ref 0.0 in
        for j = !off to !off + nb - 1 do
          total := !total +. vals.(j)
        done;
        off := !off + nb;
        lr.priority <- !total /. Float.max 1.0 (float_of_int nb))
      arr);
  (* Color in priority order. *)
  let k = machine.Machine.Config.gpr in
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b -> compare arr.(b).priority arr.(a).priority)
    order;
  let spilled = ref [] in
  let max_color = ref (-1) in
  Array.iter
    (fun i ->
      let lr = arr.(i) in
      let forbidden = Array.make k false in
      List.iter
        (fun j ->
          let c = arr.(j).color in
          if c >= 0 then forbidden.(c) <- true)
        neighbors.(i);
      let rec first_free c =
        if c >= k then None
        else if forbidden.(c) then first_free (c + 1)
        else Some c
      in
      match first_free 0 with
      | Some c ->
        lr.color <- c;
        if c > !max_color then max_color := c
      | None ->
        lr.color <- -2;
        spilled := lr.reg :: !spilled)
    order;
  insert_spills f !spilled;
  {
    ranges = Array.to_list arr;
    spilled = List.rev !spilled;
    n_colors_used = !max_color + 1;
  }

let run ?savings ?savings_batch ~machine (p : Ir.Func.program) :
    int (* total spills *) =
  List.fold_left
    (fun acc f ->
      let r = run_func ?savings ?savings_batch ~machine f in
      acc + List.length r.spilled)
    0 p.Ir.Func.funcs
