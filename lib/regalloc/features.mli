(** Features for the register-allocation priority function.

    The paper replaces Equation (2) — the per-block savings estimate of
    priority-based coloring — by a GP expression, keeping the
    normalizing sum of Equation (3) intact; the expression is evaluated
    once per (live range, block) pair. *)

val feature_set : Gp.Feature_set.t

val baseline_source : string
(** Equation (2): [w * (LDsave * uses + STsave * defs)] with the Table 3
    machine's load/store savings. *)

val baseline_expr : Gp.Expr.rexpr
val baseline_genome : Gp.Expr.genome
