(** Priority-based coloring register allocation [Chow & Hennessy 90].

    Live ranges (one per virtual register, as block sets) are colored in
    priority order — priority(lr) = Σ savings over the range's blocks / N
    (Equation 3) — against a unified file of [machine.gpr] registers.
    Uncolorable ranges are spilled: every use gets a preceding frame
    load, every definition a following frame store, both inheriting the
    instruction's guard. *)

type live_range = {
  reg : Ir.Types.reg;
  blocks : int list;
  uses_per_block : int array;
  defs_per_block : int array;
  total_uses : int;
  total_defs : int;
  is_param : bool;
  spans_call : bool;
  mutable degree : int;      (** interference-graph degree *)
  mutable priority : float;
  mutable color : int;       (** -1 unallocated, -2 spilled *)
}

type result = {
  ranges : live_range list;
  spilled : Ir.Types.reg list;
  n_colors_used : int;
}

val build_ranges :
  Ir.Func.t -> Ir.Cfg.t -> Liveness.t -> live_range list

val interferes : live_range -> live_range -> bool
(** Block-level interference: the ranges' block sets overlap. *)

type savings_fn = Gp.Feature_set.env -> float
(** The priority function under study: per-(range, block) savings. *)

val baseline_savings : savings_fn
(** Equation (2). *)

val savings_of_expr : ?compiled:bool -> Gp.Expr.rexpr -> savings_fn
(** Compiles [e] once through {!Gp.Evalc} (default); [~compiled:false]
    keeps the {!Gp.Eval} tree-walker, the bit-identical executable
    reference. *)

type savings_batch = Gp.Feature_set.env array -> float array
(** Vectorized savings: one call scores many (range, block) feature
    vectors.  Passed to {!run_func} / {!run}, the allocator batches all
    of a function's pairs through a single evaluation instead of one
    interpreter entry per pair — same sums, same priorities, bit
    identical to {!savings_fn}. *)

val savings_batch_of_expr : ?compiled:bool -> Gp.Expr.rexpr -> savings_batch
(** Batch counterpart of {!savings_of_expr}: {!Gp.Evalc.run_batch} when
    [compiled] (default), a per-point tree walk otherwise. *)

val block_weight : int -> float
(** Static execution-frequency estimate from loop depth (10^depth,
    capped). *)

val insert_spills : Ir.Func.t -> Ir.Types.reg list -> unit

val run_func :
  ?savings:savings_fn ->
  ?savings_batch:savings_batch ->
  machine:Machine.Config.t ->
  Ir.Func.t ->
  result
(** When [savings_batch] is given it supersedes [savings]: priorities
    come from one vectorized evaluation over every (range, block) pair
    of the function. *)

val run :
  ?savings:savings_fn ->
  ?savings_batch:savings_batch ->
  machine:Machine.Config.t ->
  Ir.Func.program ->
  int
(** Allocates every function; returns the total number of spilled
    ranges. *)
