(* Classic backward liveness dataflow at basic-block granularity.

   Registers are dense small ints, so sets are bool arrays.  Terminator
   operands count as uses at the end of the block. *)

type t = {
  n_regs : int;
  live_in : bool array array;     (* block index -> reg -> live *)
  live_out : bool array array;
  use_ : bool array array;        (* upward-exposed uses *)
  def : bool array array;
}

let term_uses (term : Ir.Func.terminator) : Ir.Types.reg list =
  match term with
  | Ir.Func.Br (Ir.Types.Reg r, _, _) -> [ r ]
  | Ir.Func.Ret (Some (Ir.Types.Reg r)) -> [ r ]
  | Ir.Func.Br _ | Ir.Func.Jmp _ | Ir.Func.Ret _ -> []

let compute (f : Ir.Func.t) (g : Ir.Cfg.t) : t =
  let n = Ir.Cfg.n_blocks g in
  let n_regs = f.Ir.Func.next_reg in
  let mk () = Array.init n (fun _ -> Array.make n_regs false) in
  let live_in = mk () and live_out = mk () and use_ = mk () and def = mk () in
  (* Local use/def: a use is upward-exposed if not preceded by a def in the
     same block.  Predicated defs are treated as uses-preserving (a
     nullified def leaves the old value live), so a guarded def does not
     kill. *)
  for bi = 0 to n - 1 do
    let b = Ir.Cfg.block_of g bi in
    List.iter
      (fun (i : Ir.Instr.t) ->
        List.iter
          (fun r -> if not def.(bi).(r) then use_.(bi).(r) <- true)
          (Ir.Instr.uses i.Ir.Instr.kind);
        match Ir.Instr.def i.Ir.Instr.kind with
        | Some d when i.Ir.Instr.guard = Ir.Types.p_true -> def.(bi).(d) <- true
        | Some d ->
          (* Conditional def: the previous value may flow through, so the
             register behaves like a use and the def does not kill. *)
          if not def.(bi).(d) then use_.(bi).(d) <- true
        | None -> ())
      b.Ir.Func.instrs;
    List.iter
      (fun r -> if not def.(bi).(r) then use_.(bi).(r) <- true)
      (term_uses b.Ir.Func.term)
  done;
  (* Iterate to fixpoint, reverse order for fast convergence. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = n - 1 downto 0 do
      (* live_out = union of successors' live_in *)
      List.iter
        (fun s ->
          for r = 0 to n_regs - 1 do
            if live_in.(s).(r) && not live_out.(bi).(r) then begin
              live_out.(bi).(r) <- true;
              changed := true
            end
          done)
        g.Ir.Cfg.succ.(bi);
      (* live_in = use + (live_out - def) *)
      for r = 0 to n_regs - 1 do
        let v = use_.(bi).(r) || (live_out.(bi).(r) && not def.(bi).(r)) in
        if v && not live_in.(bi).(r) then begin
          live_in.(bi).(r) <- true;
          changed := true
        end
      done
    done
  done;
  { n_regs; live_in; live_out; use_; def }

(* Is register [r] live anywhere in block [bi] (live-in, live-out, or
   locally used/defined)? *)
let live_in_block (t : t) bi r =
  t.live_in.(bi).(r) || t.live_out.(bi).(r) || t.use_.(bi).(r) || t.def.(bi).(r)
