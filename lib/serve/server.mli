(** The [metaopt serve] evaluation daemon.

    A single-threaded event loop over a Unix-domain socket: framed
    requests (see {!Protocol}) from any number of study clients, one
    shared {!Driver.Shardstore} fitness store, one persistent
    {!Gp.Parmap} pool.  Store hits are answered immediately; misses
    from all clients coalesce into a bounded queue — identical digests
    collapse to one pending evaluation with many waiters — and drain
    through single [run_batch] dispatches.  Backpressure is typed
    ([Rejected]): a batch that would overflow [queue_cap], or a client
    above [inflight_cap], evaluates nothing.

    Telemetry (when enabled in the daemon process): [serve.requests],
    [serve.batched] (requests that shared a dispatch with others),
    [serve.queue_depth] (observed at each dispatch), [serve.rejected].

    Failure model: a {e client} that disappears forfeits its responses
    but its queued work still runs and lands in the store; the daemon
    never blocks on one client's socket.  On SIGTERM / SIGINT / [stop]
    the daemon stops accepting, answers everything queued (in-flight
    batches drain through the pool, results are persisted — the store
    is left compactable), flushes, shuts the pool down and unlinks the
    socket.  A stale socket file (no listener behind it) is detected by
    a connect probe at startup and removed; a {e live} one makes
    {!run} fail rather than fight an existing daemon. *)

type config = {
  socket : string;  (** Unix-domain socket path to listen on *)
  pool : Gp.Parmap.pool;  (** shared worker pool shape *)
  cache_dir : string option;  (** shared persistent store; [None] = memory *)
  cache_shards : int;
  queue_cap : int;  (** max queued evaluations, across all clients *)
  inflight_cap : int;  (** max unanswered Eval requests per client *)
  idle_timeout_s : float option;
      (** disconnect a client quiet this long with nothing in flight *)
  metrics_out : string option;
      (** write a one-line JSON counter summary here on shutdown *)
}

val default_config : socket:string -> config
(** Fork pool at 2 jobs with 1 retry, in-memory store, queue cap 4096,
    in-flight cap 8, no idle timeout. *)

val run : ?stop:(unit -> bool) -> config -> unit
(** Serve until SIGTERM / SIGINT (or [stop ()] turning true, polled once
    per loop pass), then drain gracefully and return.  The process's
    SIGTERM/SIGINT/SIGPIPE handlers are saved and restored.
    @raise Failure if the socket path is held by a live daemon or a
    non-socket file; @raise Invalid_argument on non-positive caps. *)
