(** Wire protocol of the [metaopt serve] evaluation daemon.

    {2 Frame layout}

    Every message each way is one frame: a 4-byte big-endian payload
    length followed by the payload.  Lengths above {!max_frame} (or
    {!max_hello_frame} during the handshake) are rejected before any
    allocation.

    The first frame after connect is a plain-text version handshake —
    client sends ["metaopt-serve 1"], daemon answers
    ["metaopt-serve 1 ok"] or closes — so an incompatible or garbage
    peer is refused by string comparison before anything reaches
    [Marshal].  Every subsequent payload is a marshaled {!request}
    (client to daemon) or {!response} (daemon to client); both sides are
    builds of the same repository, the same discipline the fork pool's
    worker pipes already rely on. *)

val version : int
val magic : string
val max_frame : int
val max_hello_frame : int

type task = {
  t_digest : string;
      (** the client-computed persistent store key; the daemon serves
          and stores by this digest without recomputing it *)
  t_genome : Gp.Expr.genome;  (** canonical; evaluated exactly as sent *)
  t_case : int;
}

type request =
  | Open_study of Driver.Study.remote_desc
      (** register a study shape; idempotent — the same description
          from any client yields the same study id *)
  | Eval of {
      req : int;  (** client-chosen correlation id *)
      study : int;  (** from [Study_opened] *)
      dataset : Benchmarks.Bench.dataset;
      tasks : task array;
    }

type reject_reason =
  | Queue_full  (** the daemon's bounded task queue cannot take the batch *)
  | Inflight_cap  (** this client already has too many open requests *)

val reject_to_string : reject_reason -> string

type response =
  | Study_opened of { study : int }
  | Eval_result of { req : int; outcomes : float Gp.Parmap.outcome array }
      (** one outcome per task, in request order; non-[Ok] outcomes are
          the pool's fault classification, forwarded verbatim *)
  | Rejected of { req : int; reason : reject_reason }
      (** typed backpressure: nothing was evaluated; retry later *)
  | Shutting_down  (** the daemon is draining; it accepts no new work *)
  | Server_error of string

(** {2 Blocking framed IO (client side; EINTR-safe)} *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : ?max:int -> Unix.file_descr -> string
(** @raise End_of_file on a closed peer, [Failure] on a bad length. *)

val client_handshake : Unix.file_descr -> unit
(** Send the hello frame and require the daemon's acknowledgment.
    @raise Failure on a version mismatch or a non-daemon peer. *)

val send_request : Unix.file_descr -> request -> unit
val read_response : Unix.file_descr -> response

(** {2 Codecs (for the daemon's non-blocking loop)} *)

val hello : string
val hello_ok : string
val frame : string -> bytes
val decode_len : bytes -> int -> int
(** Length of the frame whose 4 header bytes sit at [off].
    @raise Failure outside [0..max_frame]. *)

val encode_request : request -> string
val encode_response : response -> string
val decode_request : string -> request
val decode_response : string -> response
