(** The study-side client of the [metaopt serve] daemon.

    {!register} installs the dialer {!Driver.Study.set_remote_dialer}
    expects; after that, any [Study.config] with [remote = Some socket]
    transparently evaluates against the shared daemon.  The connection
    is dialed eagerly at context creation (an unreachable daemon fails
    fast), redialed once per batch after a drop (Open_study is
    idempotent and Eval atomic, so resending is safe), and typed
    rejections are retried with exponential backoff — daemon
    backpressure slows a client, it never fails a study.  A daemon that
    is genuinely gone raises [Failure] with a hint to rerun without
    [--connect]; there is no silent local fallback. *)

val dial : socket:string -> Driver.Study.remote_desc -> Driver.Study.remote_handle
(** Connect, handshake, and register the study shape.  Exposed for
    tests; normal use goes through {!register}. *)

val register : unit -> unit
(** Install {!dial} as the process-wide remote dialer. *)
