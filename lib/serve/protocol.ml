(* The wire protocol between a metaopt study client and the evaluation
   daemon.  See protocol.mli for the frame layout and the handshake.

   Framing is a 4-byte big-endian payload length followed by the
   payload.  The first frame each way is a plain-text version handshake
   (so a garbage or incompatible peer is rejected by string compare,
   before anything reaches Marshal); every later frame is a marshaled
   [request] / [response].  Marshal is the same channel discipline the
   fork pool's worker pipes use, and every type that crosses the wire
   ([Study.remote_desc], genomes, datasets, outcomes) is pure data. *)

let version = 1
let magic = "metaopt-serve"

(* Payload ceiling: a batch of a few thousand genomes marshals to well
   under a megabyte; anything near the cap is a corrupt or hostile
   length header, not a real request. *)
let max_frame = 64 * 1024 * 1024

(* The handshake frames are tiny; a longer one is not a handshake. *)
let max_hello_frame = 256

type task = { t_digest : string; t_genome : Gp.Expr.genome; t_case : int }

type request =
  | Open_study of Driver.Study.remote_desc
  | Eval of {
      req : int;
      study : int;
      dataset : Benchmarks.Bench.dataset;
      tasks : task array;
    }

type reject_reason = Queue_full | Inflight_cap

let reject_to_string = function
  | Queue_full -> "queue full"
  | Inflight_cap -> "per-client in-flight cap"

type response =
  | Study_opened of { study : int }
  | Eval_result of { req : int; outcomes : float Gp.Parmap.outcome array }
  | Rejected of { req : int; reason : reject_reason }
  | Shutting_down
  | Server_error of string

(* --- Framing -------------------------------------------------------------- *)

let retry_eintr = Gp.Parmap.retry_eintr

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  b

let decode_len header off =
  let len = Int32.to_int (Bytes.get_int32_be header off) in
  if len < 0 || len > max_frame then
    failwith (Printf.sprintf "serve: bad frame length %d" len)
  else len

let write_fully fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + retry_eintr (fun () -> Unix.write fd b !off (len - !off))
  done

let write_frame fd payload = write_fully fd (frame payload)

let read_fully fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k = retry_eintr (fun () -> Unix.read fd b !off (n - !off)) in
    if k = 0 then raise End_of_file;
    off := !off + k
  done;
  b

let read_frame ?(max = max_frame) fd =
  let header = read_fully fd 4 in
  let len = decode_len header 0 in
  if len > max then failwith (Printf.sprintf "serve: frame too long (%d)" len);
  Bytes.to_string (read_fully fd len)

(* --- Handshake ------------------------------------------------------------ *)

let hello = Printf.sprintf "%s %d" magic version
let hello_ok = Printf.sprintf "%s %d ok" magic version

let client_handshake fd =
  write_frame fd hello;
  let reply = read_frame ~max:max_hello_frame fd in
  if reply <> hello_ok then
    failwith
      (Printf.sprintf
         "serve: version handshake failed (sent %S, daemon answered %S)" hello
         reply)

(* --- Marshal wrappers ----------------------------------------------------- *)

let encode_request (r : request) = Marshal.to_string r []
let encode_response (r : response) = Marshal.to_string r []

let decode_request s : request =
  try Marshal.from_string s 0
  with _ -> failwith "serve: unreadable request frame"

let decode_response s : response =
  try Marshal.from_string s 0
  with _ -> failwith "serve: unreadable response frame"

let send_request fd r = write_frame fd (encode_request r)
let read_response fd = decode_response (read_frame fd)
