(* The thin client behind `metaopt <study> --connect SOCK`.

   One connection per study context, dialed lazily and redialed after
   a drop: the daemon deduplicates Open_study by content, so
   reconnect-and-reopen is idempotent.  Eval requests are synchronous —
   one outstanding request per handle, which is exactly the evaluator's
   batch cadence — and typed rejections (queue full, in-flight cap) are
   retried with exponential backoff: backpressure from the daemon slows
   a client down, it never fails a study.  A daemon that is gone
   mid-run (connection refused and redial fails, or it answers
   Shutting_down) fails the study loudly; no silent fallback to local
   evaluation, which would desynchronize the shared store. *)

type t = {
  socket : string;
  desc : Driver.Study.remote_desc;
  mutable fd : Unix.file_descr option;
  mutable study : int option;  (* server id, valid for the connection *)
  mutable next_req : int;
}

let backoff_base_s = 0.01
let backoff_cap_s = 0.5
let max_rejections = 10_000

let disconnect t =
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.fd;
  t.fd <- None;
  t.study <- None

let connect_fd socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Gp.Parmap.retry_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX socket))
  with
  | () ->
    Protocol.client_handshake fd;
    fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let daemon_gone t what =
  disconnect t;
  failwith
    (Printf.sprintf
       "serve client: evaluation daemon on %s is gone (%s); rerun without \
        --connect for local evaluation"
       t.socket what)

(* Connection + study registration, dialing if needed.  Returns the
   connected fd and the server's study id. *)
let ensure t =
  let fd =
    match t.fd with
    | Some fd -> fd
    | None ->
      let fd =
        try connect_fd t.socket
        with
        | Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "serve client: cannot reach daemon on %s (%s)"
               t.socket (Unix.error_message e))
        | Failure msg -> failwith (Printf.sprintf "serve client: %s" msg)
      in
      t.fd <- Some fd;
      t.study <- None;
      fd
  in
  match t.study with
  | Some id -> (fd, id)
  | None -> (
    Protocol.send_request fd (Protocol.Open_study t.desc);
    match Protocol.read_response fd with
    | Protocol.Study_opened { study } ->
      t.study <- Some study;
      (fd, study)
    | Protocol.Shutting_down -> daemon_gone t "shutting down"
    | Protocol.Server_error msg ->
      disconnect t;
      failwith (Printf.sprintf "serve client: daemon refused the study: %s" msg)
    | Protocol.Eval_result _ | Protocol.Rejected _ ->
      disconnect t;
      failwith "serve client: protocol error: unexpected response to Open_study"
    | exception End_of_file -> daemon_gone t "closed the connection"
    | exception Failure msg -> disconnect t; failwith ("serve client: " ^ msg))

let nap s = ignore (Unix.select [] [] [] s)

(* One evaluator batch: ship the misses, block for the outcomes.
   Retries typed rejections with backoff and survives one connection
   drop per attempt by redialing (the request was either never accepted
   or fully answered — Eval is atomic on the daemon side — so resending
   is safe: results are cached by digest and evaluation is pure). *)
let eval t dataset (batch : (string * Gp.Expr.genome * int) array) :
    float Gp.Parmap.outcome array =
  let tasks =
    Array.map
      (fun (digest, genome, case) ->
        { Protocol.t_digest = digest; t_genome = genome; t_case = case })
      batch
  in
  let rec attempt ~rejections ~redials =
    let fd, study = ensure t in
    let req = t.next_req in
    t.next_req <- req + 1;
    let retry_rejected reason =
      if rejections >= max_rejections then
        failwith
          (Printf.sprintf
             "serve client: daemon on %s still rejects after %d attempts (%s)"
             t.socket rejections (Protocol.reject_to_string reason))
      else begin
        nap
          (Float.min backoff_cap_s
             (backoff_base_s *. Float.of_int (1 lsl min rejections 10)));
        attempt ~rejections:(rejections + 1) ~redials
      end
    in
    let redial what =
      disconnect t;
      if redials >= 1 then daemon_gone t what
      else attempt ~rejections ~redials:(redials + 1)
    in
    match
      Protocol.send_request fd (Protocol.Eval { req; study; dataset; tasks });
      Protocol.read_response fd
    with
    | Protocol.Eval_result { req = r; outcomes } ->
      if r <> req then begin
        disconnect t;
        failwith "serve client: protocol error: response for a different \
                  request"
      end
      else outcomes
    | Protocol.Rejected { reason; _ } -> retry_rejected reason
    | Protocol.Shutting_down -> daemon_gone t "shutting down"
    | Protocol.Server_error msg ->
      disconnect t;
      failwith (Printf.sprintf "serve client: daemon error: %s" msg)
    | Protocol.Study_opened _ ->
      disconnect t;
      failwith "serve client: protocol error: unexpected Study_opened"
    | exception End_of_file -> redial "closed the connection"
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      redial "dropped the connection"
  in
  attempt ~rejections:0 ~redials:0

let dial ~socket (desc : Driver.Study.remote_desc) : Driver.Study.remote_handle
    =
  let t = { socket; desc; fd = None; study = None; next_req = 1 } in
  (* Dial eagerly so an unreachable daemon fails at context creation,
     not somewhere inside the first generation. *)
  ignore (ensure t);
  {
    Driver.Study.rh_eval = (fun dataset batch -> eval t dataset batch);
    rh_close = (fun () -> disconnect t);
  }

let register () = Driver.Study.set_remote_dialer dial
