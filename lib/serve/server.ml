(* The evaluation daemon behind [metaopt serve].

   One single-threaded event loop owns a Unix-domain listening socket,
   the shared fitness store, and one persistent Parmap pool.  Clients
   frame requests over the socket (see Protocol); the loop answers
   store hits immediately, coalesces the misses of every connected
   client into one bounded queue — identical digests collapse to a
   single pending evaluation with many waiters — and drains the queue
   through single [Parmap.run_batch] dispatches.  Backpressure is
   typed: a batch that would overflow the queue, or a client exceeding
   its in-flight cap, gets a [Rejected] response and nothing else
   happens.

   Determinism: the pool workers run [Study.service_of_desc] closures —
   the exact compile-and-simulate pipeline a local context's engines
   dispatch — on the client's canonical genome, and results are
   sanitized with the evaluator's own policy before storing or
   replying.  A served study is therefore bit-identical to a local run
   of the same study, which the [served_vs_local] fuzz oracle and the
   CI serve-smoke job both enforce.

   Shutdown (SIGTERM / SIGINT / [stop ()]) is graceful: stop accepting,
   answer everything already queued — in-flight batches drain through
   the pool and land in the store — flush the sockets, shut the pool
   down, unlink the socket file. *)

type config = {
  socket : string;
  pool : Gp.Parmap.pool;
  cache_dir : string option;
  cache_shards : int;
  queue_cap : int;
  inflight_cap : int;
  idle_timeout_s : float option;
  metrics_out : string option;
}

let default_config ~socket =
  {
    socket;
    pool = Gp.Parmap.pool ~backend:`Fork ~jobs:2 ~retries:1 ();
    cache_dir = None;
    cache_shards = Driver.Shardstore.default_shards;
    queue_cap = 4096;
    inflight_cap = 8;
    idle_timeout_s = None;
    metrics_out = None;
  }

(* --- Worker-side study services ------------------------------------------- *)

(* Tasks are self-describing: a fork worker captures this function's
   environment when the pool first forks, before any study may have
   been opened, so the study description must ride in the task itself.
   Each worker lazily builds and memoizes the service for a description
   the first time it sees it — that warm state (prepared benches,
   baselines, simulation caches) amortizing across batches is the point
   of the daemon.  The registry is mutex-guarded for the [`Domains]
   backend, where workers share this heap. *)
type wtask = {
  w_desc : Driver.Study.remote_desc;
  w_dataset : Benchmarks.Bench.dataset;
  w_genome : Gp.Expr.genome;
  w_case : int;
}

let desc_key (d : Driver.Study.remote_desc) =
  Digest.string (Marshal.to_string d [])

let services : (string, Driver.Study.service) Hashtbl.t = Hashtbl.create 4
let services_mu = Mutex.create ()

let service_for desc =
  let key = desc_key desc in
  Mutex.lock services_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock services_mu)
    (fun () ->
      match Hashtbl.find_opt services key with
      | Some s -> s
      | None ->
        let s = Driver.Study.service_of_desc desc in
        Hashtbl.replace services key s;
        s)

let eval_wtask (w : wtask) =
  let svc = service_for w.w_desc in
  svc.Driver.Study.svc_eval w.w_dataset w.w_genome w.w_case

(* --- Server state --------------------------------------------------------- *)

type client = {
  c_fd : Unix.file_descr;
  c_id : int;
  mutable c_hello : bool;
  c_in : Buffer.t;
  mutable c_out : Buffer.t;
  mutable c_out_off : int;
  mutable c_inflight : int;
  mutable c_last : float;
  mutable c_closed : bool;
}

(* One client Eval request being assembled: hits fill immediately,
   misses fill as dispatches complete; at zero remaining the response
   goes out. *)
type preq = {
  p_req : int;
  p_client : client;
  p_outcomes : float Gp.Parmap.outcome option array;
  mutable p_remaining : int;
}

(* One queued evaluation, shared by every request that asked for its
   digest. *)
type entry = {
  e_digest : string;
  e_task : wtask;
  mutable e_waiters : (preq * int) list;
}

type stats = {
  mutable s_requests : int;
  mutable s_batched : int;  (* requests that shared a dispatch with others *)
  mutable s_rejected : int;
  mutable s_store_hits : int;
  mutable s_coalesced : int;  (* tasks answered by another client's entry *)
  mutable s_evaluated : int;
  mutable s_dispatches : int;
  mutable s_max_queue : int;
}

type state = {
  cfg : config;
  store : Driver.Shardstore.t option;
  mem : (string, float) Hashtbl.t;  (* digest -> fitness, daemon lifetime *)
  clients : (int, client) Hashtbl.t;
  queue : entry Queue.t;
  by_digest : (string, entry) Hashtbl.t;  (* queued entries only *)
  study_ids : (string, int) Hashtbl.t;  (* desc digest -> id *)
  study_descs : (int, Driver.Study.remote_desc) Hashtbl.t;
  mutable next_study : int;
  mutable next_client : int;
  mutable handle : (wtask, float) Gp.Parmap.handle option;
  mutable draining : bool;
  st_stats : stats;
}

let lookup st digest =
  match Hashtbl.find_opt st.mem digest with
  | Some _ as hit -> hit
  | None -> (
    match st.store with
    | Some s -> Driver.Shardstore.find s digest
    | None -> None)

(* --- Client IO ------------------------------------------------------------ *)

let close_client st c =
  if not c.c_closed then begin
    c.c_closed <- true;
    Hashtbl.remove st.clients c.c_id;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end

let enqueue_bytes c (b : bytes) =
  if not c.c_closed then Buffer.add_bytes c.c_out b

let enqueue_response c resp =
  enqueue_bytes c (Protocol.frame (Protocol.encode_response resp))

(* Write what the socket will take; true when the buffer is empty. *)
let flush_out st c =
  if c.c_closed then true
  else begin
    let total = Buffer.length c.c_out in
    if c.c_out_off >= total then true
    else begin
      let b = Buffer.to_bytes c.c_out in
      (match
         Unix.write c.c_fd b c.c_out_off (total - c.c_out_off)
       with
      | n ->
        c.c_out_off <- c.c_out_off + n;
        if c.c_out_off >= total then begin
          c.c_out <- Buffer.create 256;
          c.c_out_off <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_client st c);
      c.c_closed || c.c_out_off >= Buffer.length c.c_out
    end
  end

let respond_eval st preq =
  let c = preq.p_client in
  c.c_inflight <- c.c_inflight - 1;
  if not c.c_closed then begin
    let outcomes =
      Array.map
        (function
          | Some o -> o
          | None -> Gp.Parmap.Crashed "serve: internal: unresolved task")
        preq.p_outcomes
    in
    enqueue_response c (Protocol.Eval_result { req = preq.p_req; outcomes });
    ignore (flush_out st c)
  end

(* --- Request handling ----------------------------------------------------- *)

let handle_open_study st c (desc : Driver.Study.remote_desc) =
  let key = desc_key desc in
  let id =
    match Hashtbl.find_opt st.study_ids key with
    | Some id -> id
    | None ->
      let id = st.next_study in
      st.next_study <- id + 1;
      Hashtbl.replace st.study_ids key id;
      Hashtbl.replace st.study_descs id desc;
      Logs.info (fun m ->
          m "serve: study %d opened (%s, %d bench%s)" id
            (Driver.Study.kind_name desc.Driver.Study.rd_kind)
            (List.length desc.Driver.Study.rd_benches)
            (if List.length desc.Driver.Study.rd_benches = 1 then "" else "es"));
      id
  in
  enqueue_response c (Protocol.Study_opened { study = id })

let handle_eval st c ~req ~study ~dataset ~(tasks : Protocol.task array) =
  st.st_stats.s_requests <- st.st_stats.s_requests + 1;
  Gp.Telemetry.incr "serve.requests";
  let reject reason =
    st.st_stats.s_rejected <- st.st_stats.s_rejected + 1;
    Gp.Telemetry.incr "serve.rejected";
    enqueue_response c (Protocol.Rejected { req; reason })
  in
  match Hashtbl.find_opt st.study_descs study with
  | None ->
    enqueue_response c
      (Protocol.Server_error (Printf.sprintf "unknown study id %d" study))
  | Some desc ->
    if c.c_inflight >= st.cfg.inflight_cap then reject Protocol.Inflight_cap
    else begin
      (* Count the genuinely new digests first, so a batch that cannot
         fit is rejected whole before anything is enqueued. *)
      let fresh = Hashtbl.create 16 in
      Array.iter
        (fun (t : Protocol.task) ->
          if
            lookup st t.Protocol.t_digest = None
            && (not (Hashtbl.mem st.by_digest t.Protocol.t_digest))
            && not (Hashtbl.mem fresh t.Protocol.t_digest)
          then Hashtbl.add fresh t.Protocol.t_digest ())
        tasks;
      if Queue.length st.queue + Hashtbl.length fresh > st.cfg.queue_cap then
        reject Protocol.Queue_full
      else begin
        c.c_inflight <- c.c_inflight + 1;
        let n = Array.length tasks in
        let preq =
          { p_req = req; p_client = c; p_outcomes = Array.make n None;
            p_remaining = 0 }
        in
        Array.iteri
          (fun i (t : Protocol.task) ->
            match lookup st t.Protocol.t_digest with
            | Some v ->
              st.st_stats.s_store_hits <- st.st_stats.s_store_hits + 1;
              preq.p_outcomes.(i) <- Some (Gp.Parmap.Ok v)
            | None -> (
              preq.p_remaining <- preq.p_remaining + 1;
              match Hashtbl.find_opt st.by_digest t.Protocol.t_digest with
              | Some e ->
                (* Another request (possibly another client's) already
                   queued this digest: one evaluation, many waiters. *)
                st.st_stats.s_coalesced <- st.st_stats.s_coalesced + 1;
                e.e_waiters <- (preq, i) :: e.e_waiters
              | None ->
                let e =
                  {
                    e_digest = t.Protocol.t_digest;
                    e_task =
                      {
                        w_desc = desc;
                        w_dataset = dataset;
                        w_genome = t.Protocol.t_genome;
                        w_case = t.Protocol.t_case;
                      };
                    e_waiters = [ (preq, i) ];
                  }
                in
                Queue.push e st.queue;
                Hashtbl.replace st.by_digest t.Protocol.t_digest e))
          tasks;
        if preq.p_remaining = 0 then respond_eval st preq
      end
    end

let handle_frame st c payload =
  c.c_last <- Unix.gettimeofday ();
  if not c.c_hello then begin
    if payload = Protocol.hello then begin
      c.c_hello <- true;
      enqueue_bytes c (Protocol.frame Protocol.hello_ok);
      ignore (flush_out st c)
    end
    else begin
      Logs.warn (fun m -> m "serve: client %d failed the handshake" c.c_id);
      close_client st c
    end
  end
  else
    match Protocol.decode_request payload with
    | exception Failure msg ->
      enqueue_response c (Protocol.Server_error msg);
      ignore (flush_out st c);
      close_client st c
    | Protocol.Open_study desc -> handle_open_study st c desc
    | Protocol.Eval { req; study; dataset; tasks } ->
      if st.draining then
        enqueue_response c Protocol.Shutting_down
      else handle_eval st c ~req ~study ~dataset ~tasks

(* Peel every complete frame out of the client's inbound buffer. *)
let peel_frames st c =
  let continue = ref true in
  while !continue && not c.c_closed do
    let data = Buffer.to_bytes c.c_in in
    let len = Bytes.length data in
    if len < 4 then continue := false
    else
      match Protocol.decode_len data 0 with
      | exception Failure msg ->
        Logs.warn (fun m -> m "serve: client %d: %s" c.c_id msg);
        close_client st c
      | flen ->
        if (not c.c_hello) && flen > Protocol.max_hello_frame then begin
          Logs.warn (fun m ->
              m "serve: client %d sent a non-handshake first frame" c.c_id);
          close_client st c
        end
        else if len < 4 + flen then continue := false
        else begin
          let payload = Bytes.sub_string data 4 flen in
          Buffer.clear c.c_in;
          Buffer.add_subbytes c.c_in data (4 + flen) (len - 4 - flen);
          handle_frame st c payload
        end
  done

let handle_readable st c =
  let chunk = Bytes.create 65536 in
  let continue = ref true in
  while !continue && not c.c_closed do
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      close_client st c;
      continue := false
    | n ->
      Buffer.add_subbytes c.c_in chunk 0 n;
      if n < Bytes.length chunk then continue := false
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ ->
      close_client st c;
      continue := false
  done;
  if not c.c_closed then peel_frames st c

(* --- Dispatch ------------------------------------------------------------- *)

let pool_handle st =
  match st.handle with
  | Some h -> h
  | None ->
    let h = Gp.Parmap.create st.cfg.pool ~f:eval_wtask in
    st.handle <- Some h;
    h

(* Drain everything queued into one batch on the shared pool, resolve
   the waiters, persist the results.  Blocking: requests arriving while
   a batch runs wait in the socket buffers and form the next batch. *)
let dispatch st =
  if not (Queue.is_empty st.queue) then begin
    let depth = Queue.length st.queue in
    st.st_stats.s_max_queue <- max st.st_stats.s_max_queue depth;
    Gp.Telemetry.observe "serve.queue_depth" (float_of_int depth);
    let entries = Array.init depth (fun _ -> Queue.pop st.queue) in
    Array.iter (fun e -> Hashtbl.remove st.by_digest e.e_digest) entries;
    (* How many distinct requests share this dispatch: every one past
       the first rode along in a coalesced batch. *)
    let reqs = Hashtbl.create 16 in
    Array.iter
      (fun e ->
        List.iter
          (fun (p, _) ->
            Hashtbl.replace reqs (p.p_client.c_id, p.p_req) ())
          e.e_waiters)
      entries;
    let distinct = Hashtbl.length reqs in
    if distinct > 1 then begin
      st.st_stats.s_batched <- st.st_stats.s_batched + (distinct - 1);
      Gp.Telemetry.incr ~by:(distinct - 1) "serve.batched"
    end;
    st.st_stats.s_dispatches <- st.st_stats.s_dispatches + 1;
    st.st_stats.s_evaluated <- st.st_stats.s_evaluated + depth;
    let outcomes, _pstats =
      Gp.Parmap.run_batch (pool_handle st) (Array.map (fun e -> e.e_task) entries)
    in
    let persist = ref [] in
    Array.iteri
      (fun i e ->
        let outcome =
          match outcomes.(i) with
          | Gp.Parmap.Ok v ->
            (* The evaluator's result policy, applied before storing or
               replying, so the daemon's store holds exactly what a
               local engine would have persisted. *)
            let v = Driver.Evaluator.sanitize v in
            Hashtbl.replace st.mem e.e_digest v;
            if st.store <> None then persist := (e.e_digest, v) :: !persist;
            Gp.Parmap.Ok v
          | (Gp.Parmap.Crashed _ | Gp.Parmap.Timed_out | Gp.Parmap.Gave_up) as f
            ->
            (* Infrastructure faults are forwarded, never stored — the
               same contract as the local engine's cache. *)
            f
        in
        List.iter
          (fun (preq, idx) ->
            preq.p_outcomes.(idx) <- Some outcome;
            preq.p_remaining <- preq.p_remaining - 1;
            if preq.p_remaining = 0 then respond_eval st preq)
          e.e_waiters)
      entries;
    if !persist <> [] then
      Option.iter
        (fun s -> Driver.Shardstore.append s (List.rev !persist))
        st.store
  end

(* --- The accept loop ------------------------------------------------------ *)

let bind_socket path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* A socket file is stale if nothing accepts on it: a previous
       daemon that died without unlinking.  Probe with a connect. *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      failwith
        (Printf.sprintf "serve: %s: a daemon is already serving here" path)
    else begin
      Logs.warn (fun m -> m "serve: removing stale socket file %s" path);
      (try Sys.remove path with Sys_error _ -> ())
    end
  | _ ->
    failwith
      (Printf.sprintf "serve: %s exists and is not a socket; refusing" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let accept_clients st listen_fd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let id = st.next_client in
      st.next_client <- id + 1;
      let c =
        {
          c_fd = fd;
          c_id = id;
          c_hello = false;
          c_in = Buffer.create 256;
          c_out = Buffer.create 256;
          c_out_off = 0;
          c_inflight = 0;
          c_last = Unix.gettimeofday ();
          c_closed = false;
        }
      in
      Hashtbl.replace st.clients id c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let prune_idle st =
  match st.cfg.idle_timeout_s with
  | None -> ()
  | Some limit ->
    let now = Unix.gettimeofday () in
    let stale =
      Hashtbl.fold
        (fun _ c acc ->
          if c.c_inflight = 0 && now -. c.c_last > limit then c :: acc else acc)
        st.clients []
    in
    List.iter
      (fun c ->
        Logs.info (fun m ->
            m "serve: disconnecting idle client %d (quiet for over %gs)"
              c.c_id limit);
        close_client st c)
      stale

let write_metrics st =
  Option.iter
    (fun path ->
      let s = st.st_stats in
      try
        let oc = open_out path in
        Printf.fprintf oc
          "{\"requests\": %d, \"batched\": %d, \"rejected\": %d, \
           \"store_hits\": %d, \"coalesced\": %d, \"evaluated\": %d, \
           \"dispatches\": %d, \"max_queue_depth\": %d}\n"
          s.s_requests s.s_batched s.s_rejected s.s_store_hits s.s_coalesced
          s.s_evaluated s.s_dispatches s.s_max_queue;
        close_out oc
      with Sys_error e ->
        Logs.warn (fun m -> m "serve: metrics not written: %s" e))
    st.cfg.metrics_out

let run ?(stop = fun () -> false) (cfg : config) =
  if cfg.queue_cap < 1 then invalid_arg "Serve.Server.run: queue_cap < 1";
  if cfg.inflight_cap < 1 then invalid_arg "Serve.Server.run: inflight_cap < 1";
  let st =
    {
      cfg;
      store =
        Option.map
          (fun dir -> Driver.Shardstore.open_store ~shards:cfg.cache_shards dir)
          cfg.cache_dir;
      mem = Hashtbl.create 4096;
      clients = Hashtbl.create 16;
      queue = Queue.create ();
      by_digest = Hashtbl.create 256;
      study_ids = Hashtbl.create 4;
      study_descs = Hashtbl.create 4;
      next_study = 1;
      next_client = 1;
      handle = None;
      draining = false;
      st_stats =
        {
          s_requests = 0;
          s_batched = 0;
          s_rejected = 0;
          s_store_hits = 0;
          s_coalesced = 0;
          s_evaluated = 0;
          s_dispatches = 0;
          s_max_queue = 0;
        };
    }
  in
  let listen_fd = bind_socket cfg.socket in
  let stop_flag = ref false in
  let on_signal = Sys.Signal_handle (fun _ -> stop_flag := true) in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_int = Sys.signal Sys.sigint on_signal in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Logs.info (fun m -> m "serve: listening on %s" cfg.socket);
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe;
      Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with _ -> ()) st.clients;
      Hashtbl.reset st.clients;
      Option.iter Gp.Parmap.shutdown st.handle;
      st.handle <- None;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket with Sys_error _ -> ());
      write_metrics st)
    (fun () ->
      let finished = ref false in
      while not !finished do
        if (!stop_flag || stop ()) && not st.draining then begin
          st.draining <- true;
          Logs.info (fun m ->
              m "serve: shutdown requested; draining %d queued task%s"
                (Queue.length st.queue)
                (if Queue.length st.queue = 1 then "" else "s"))
        end;
        let reads =
          (if st.draining then [] else [ listen_fd ])
          @ Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) st.clients []
        in
        let writes =
          Hashtbl.fold
            (fun _ c acc ->
              if Buffer.length c.c_out > c.c_out_off then c.c_fd :: acc
              else acc)
            st.clients []
        in
        (match Unix.select reads writes [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* A signal woke us (likely SIGTERM): fall through and recheck
             the flag — never blind-retry the select here. *)
          ()
        | readable, writable, _ ->
          if List.memq listen_fd readable then accept_clients st listen_fd;
          let by_fd fd =
            Hashtbl.fold
              (fun _ c acc -> if c.c_fd == fd then Some c else acc)
              st.clients None
          in
          List.iter
            (fun fd ->
              if fd != listen_fd then
                Option.iter (fun c -> handle_readable st c) (by_fd fd))
            readable;
          List.iter
            (fun fd -> Option.iter (fun c -> ignore (flush_out st c)) (by_fd fd))
            writable);
        prune_idle st;
        (* Everything that arrived this pass — from however many
           clients — drains as one pool batch. *)
        dispatch st;
        if st.draining && Queue.is_empty st.queue then begin
          (* Flush the remaining responses with a short deadline, then
             leave: the queue is drained and answered. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec flush_all () =
            let dirty =
              Hashtbl.fold
                (fun _ c acc -> if flush_out st c then acc else c.c_fd :: acc)
                st.clients []
            in
            if dirty <> [] && Unix.gettimeofday () < deadline then begin
              (match Unix.select [] dirty [] 0.2 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | _ -> ());
              flush_all ()
            end
          in
          flush_all ();
          finished := true
        end
      done;
      Logs.info (fun m ->
          m "serve: drained; %d request(s) served, %d evaluated, %d rejected"
            st.st_stats.s_requests st.st_stats.s_evaluated
            st.st_stats.s_rejected))
