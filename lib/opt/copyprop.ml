(* Block-local copy and constant propagation.

   Within one block, after [d = mov src], uses of [d] are rewritten to
   [src] until either register is redefined.  Only unpredicated moves
   establish copies, and copies are killed by any predicated definition of
   either side (a nullified redefinition would make the rewrite wrong). *)

let run_block (b : Ir.Func.block) : unit =
  (* Map from register to its current known copy source. *)
  let copy : (Ir.Types.reg, Ir.Types.operand) Hashtbl.t = Hashtbl.create 16 in
  let kill_reg r =
    Hashtbl.remove copy r;
    (* Remove any copies whose source is r. *)
    let stale =
      Hashtbl.fold
        (fun d src acc ->
          match src with
          | Ir.Types.Reg s when s = r -> d :: acc
          | _ -> acc)
        copy []
    in
    List.iter (Hashtbl.remove copy) stale
  in
  let subst op =
    match op with
    | Ir.Types.Reg r -> (
      match Hashtbl.find_opt copy r with Some src -> src | None -> op)
    | _ -> op
  in
  b.Ir.Func.instrs <-
    List.map
      (fun (i : Ir.Instr.t) ->
        let kind = Ir.Instr.map_operands subst i.Ir.Instr.kind in
        let i = { i with Ir.Instr.kind } in
        (match Ir.Instr.def kind with
        | Some d -> kill_reg d
        | None -> ());
        (match kind with
        | Ir.Instr.Mov (d, src)
          when i.Ir.Instr.guard = Ir.Types.p_true && src <> Ir.Types.Reg d ->
          Hashtbl.replace copy d src
        | _ -> ());
        i)
      b.Ir.Func.instrs;
  (* Rewrite the terminator through surviving copies. *)
  b.Ir.Func.term <-
    (match b.Ir.Func.term with
    | Ir.Func.Br (c, l1, l2) -> Ir.Func.Br (subst c, l1, l2)
    | Ir.Func.Ret (Some v) -> Ir.Func.Ret (Some (subst v))
    | t -> t)

let run_func (f : Ir.Func.t) : unit = List.iter run_block f.Ir.Func.blocks

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
