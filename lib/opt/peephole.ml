(* Machine-oriented peephole rewrites, the "machine-specific peephole
   optimization" of the paper's Trimaran setup:

   - strength reduction: multiply by a power of two becomes a shift
     (3-cycle multiply -> 1-cycle shift on the Table 3 machine);
   - additive self: x + x becomes x << 1;
   - shifts by zero and self-moves disappear;
   - double negation folds.

   Division is deliberately not strength-reduced: truncation toward zero
   differs from an arithmetic shift on negative operands. *)

let log2_exact k =
  if k <= 0 then None
  else
    let rec go v p = if v = 1 then Some p else if v land 1 = 1 then None
      else go (v lsr 1) (p + 1)
    in
    go k 0

let rewrite (k : Ir.Instr.kind) : Ir.Instr.kind =
  match k with
  | Ir.Instr.Ibin (Ir.Types.Mul, d, a, Ir.Types.Imm c)
  | Ir.Instr.Ibin (Ir.Types.Mul, d, Ir.Types.Imm c, a) -> (
    match log2_exact c with
    | Some p -> Ir.Instr.Ibin (Ir.Types.Shl, d, a, Ir.Types.Imm p)
    | None -> k)
  | Ir.Instr.Ibin (Ir.Types.Add, d, Ir.Types.Reg a, Ir.Types.Reg b)
    when a = b ->
    Ir.Instr.Ibin (Ir.Types.Shl, d, Ir.Types.Reg a, Ir.Types.Imm 1)
  | Ir.Instr.Ibin ((Ir.Types.Shl | Ir.Types.Shr), d, a, Ir.Types.Imm 0) ->
    Ir.Instr.Mov (d, a)
  | Ir.Instr.Funop (Ir.Types.Fneg, d, a) -> (
    (* Double negation is caught at the operand level by copyprop; here
       only the trivial -0.0 constant case remains. *)
    match a with
    | Ir.Types.Fimm f -> Ir.Instr.Mov (d, Ir.Types.Fimm (-.f))
    | _ -> k)
  | _ -> k

(* Self-moves (r = mov r) are pure no-ops once copy propagation has run. *)
let is_self_move (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Mov (d, Ir.Types.Reg s) -> d = s
  | _ -> false

let run_block (b : Ir.Func.block) : unit =
  b.Ir.Func.instrs <-
    List.filter_map
      (fun (i : Ir.Instr.t) ->
        if is_self_move i then None
        else Some { i with Ir.Instr.kind = rewrite i.Ir.Instr.kind })
      b.Ir.Func.instrs

let run_func (f : Ir.Func.t) : unit = List.iter run_block f.Ir.Func.blocks

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
