(** Loop unrolling: innermost natural loops below a size threshold are
    cloned (header included) with chained back edges; exit edges keep
    their targets so non-divisible trip counts stay correct.  The payoff
    is the acyclic region handed to hyperblock formation. *)

type config = {
  factor : int;       (** total copies of the body *)
  max_blocks : int;
  max_instrs : int;
}

val default_config : config

val run_func : ?config:config -> Ir.Func.t -> unit
val run : ?config:config -> Ir.Func.program -> unit
