(* Dead-code elimination.

   A register is observed if any instruction, terminator or call argument
   anywhere in the function uses it.  Effect-free instructions whose
   definition is never observed are deleted; iterated to a fixed point so
   chains of dead computations disappear. *)

let has_effect (i : Ir.Instr.t) =
  match i.Ir.Instr.kind with
  | Ir.Instr.Store _ | Ir.Instr.Prefetch _ | Ir.Instr.Emit _
  | Ir.Instr.Exit _ | Ir.Instr.Pdef _ | Ir.Instr.Pclear _ | Ir.Instr.Por _
  | Ir.Instr.Pset _ ->
    true
  | Ir.Instr.Call (_, _, _, Ir.Instr.Impure) -> true
  | Ir.Instr.Call (_, _, _, Ir.Instr.Pure) -> false
  | _ -> false

let used_regs (f : Ir.Func.t) : (Ir.Types.reg, unit) Hashtbl.t =
  let used = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          List.iter
            (fun r -> Hashtbl.replace used r ())
            (Ir.Instr.uses i.Ir.Instr.kind))
        b.Ir.Func.instrs;
      match b.Ir.Func.term with
      | Ir.Func.Br (Ir.Types.Reg r, _, _) -> Hashtbl.replace used r ()
      | Ir.Func.Ret (Some (Ir.Types.Reg r)) -> Hashtbl.replace used r ()
      | _ -> ())
    f.Ir.Func.blocks;
  used

let run_func (f : Ir.Func.t) : unit =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = used_regs f in
    List.iter
      (fun (b : Ir.Func.block) ->
        let keep (i : Ir.Instr.t) =
          has_effect i
          ||
          match Ir.Instr.def i.Ir.Instr.kind with
          | Some d -> Hashtbl.mem used d
          | None -> true
        in
        let before = List.length b.Ir.Func.instrs in
        b.Ir.Func.instrs <- List.filter keep b.Ir.Func.instrs;
        if List.length b.Ir.Func.instrs <> before then changed := true)
      f.Ir.Func.blocks
  done

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
