(** Function inlining (one of the optimizations the paper's setup enables
    in Trimaran).  Small callees are cloned into their callers with fresh
    labels and a fresh register window; returns become jumps to the
    continuation.  The call graph is acyclic by construction, so repeated
    passes terminate. *)

type config = {
  max_callee_instrs : int;
  max_callee_blocks : int;
  max_caller_instrs : int;  (** growth cap per caller *)
}

val default_config : config

val run_func : ?config:config -> Ir.Func.program -> Ir.Func.t -> int
(** Returns the number of call sites inlined into the function. *)

val run : ?config:config -> Ir.Func.program -> int
