(* Function-wide propagation of uniquely-defined constants and copies.

   A register with exactly one (unpredicated) definition in the whole
   function behaves like an SSA name: if that definition is a move of an
   immediate, every use can read the immediate directly; if it is a move
   of another uniquely-defined register, uses can read through the copy.
   This is the cross-block complement of the block-local [Copyprop] and
   feeds loop-bound recovery everywhere (e.g. [dim - 1] conditions). *)

let run_func (f : Ir.Func.t) : unit =
  (* Count definitions per register; parameters count as a definition. *)
  let defs = Array.make f.Ir.Func.next_reg 0 in
  List.iter (fun p -> defs.(p) <- defs.(p) + 1) f.Ir.Func.params;
  let def_kind : (int, Ir.Instr.kind) Hashtbl.t = Hashtbl.create 64 in
  Ir.Func.iter_instrs f (fun _ (i : Ir.Instr.t) ->
      match Ir.Instr.def i.Ir.Instr.kind with
      | Some d ->
        defs.(d) <- defs.(d) + 1;
        if i.Ir.Instr.guard = Ir.Types.p_true then
          Hashtbl.replace def_kind d i.Ir.Instr.kind
      | None -> ());
  (* Resolve a uniquely-defined register to an immediate, reading through
     chains of unique moves.  Depth-bounded against surprises. *)
  let rec const_of depth r =
    if depth <= 0 || defs.(r) <> 1 then None
    else
      match Hashtbl.find_opt def_kind r with
      | Some (Ir.Instr.Mov (_, Ir.Types.Imm k)) -> Some (Ir.Types.Imm k)
      | Some (Ir.Instr.Mov (_, Ir.Types.Fimm k)) -> Some (Ir.Types.Fimm k)
      | Some (Ir.Instr.Mov (_, Ir.Types.Reg s)) -> const_of (depth - 1) s
      | _ -> None
  in
  let subst op =
    match op with
    | Ir.Types.Reg r -> (
      match const_of 8 r with Some c -> c | None -> op)
    | _ -> op
  in
  List.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) ->
            { i with Ir.Instr.kind = Ir.Instr.map_operands subst i.Ir.Instr.kind })
          b.Ir.Func.instrs;
      b.Ir.Func.term <-
        (match b.Ir.Func.term with
        | Ir.Func.Br (c, l1, l2) -> Ir.Func.Br (subst c, l1, l2)
        | Ir.Func.Ret (Some v) -> Ir.Func.Ret (Some (subst v))
        | t -> t))
    f.Ir.Func.blocks

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
