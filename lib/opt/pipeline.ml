(* Standard scalar optimization pipeline, run after lowering and before
   the heuristic-driven passes under study.  Mirrors the "classic
   optimizations" Trimaran enables in the paper's experimental setup. *)

type config = {
  inline : Inline.config option;
  unroll : Unroll.config option;
  iterations : int;      (* fold/prop/dce rounds *)
}

let default =
  {
    inline = Some Inline.default_config;
    unroll = Some Unroll.default_config;
    iterations = 2;
  }

let no_unroll = { default with unroll = None }

let scalar_round (p : Ir.Func.program) : unit =
  Constfold.run p;
  Copyprop.run p;
  Globprop.run p;
  Constfold.run p;
  Peephole.run p;
  Dce.run p;
  Simplify_cfg.run p

let run ?(config = default) (p : Ir.Func.program) : unit =
  for _ = 1 to config.iterations do
    scalar_round p
  done;
  (match config.inline with
  | Some i ->
    if Inline.run ~config:i p > 0 then scalar_round p
  | None -> ());
  (match config.unroll with
  | Some u ->
    Unroll.run ~config:u p;
    scalar_round p
  | None -> ());
  List.iter Ir.Func.renumber p.Ir.Func.funcs
