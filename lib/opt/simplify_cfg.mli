(** CFG simplification: jump threading through empty blocks, merging of
    straight-line block pairs (the backedge-coalescing effect the paper's
    setup relies on), and unreachable-block removal. *)

val retarget : Ir.Func.t -> (Ir.Types.label -> Ir.Types.label) -> unit
val thread_jumps : Ir.Func.t -> bool
val merge_pairs : Ir.Func.t -> bool
val remove_unreachable : Ir.Func.t -> unit
val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
