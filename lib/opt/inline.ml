(* Function inlining, one of the optimizations the paper's experimental
   setup enables in Trimaran.

   A call site is inlined when the callee is small: the caller's block is
   split around the call, the callee's blocks are cloned with fresh labels
   and a fresh register window, parameters become moves, and every return
   becomes a jump to the continuation (with a move of the return value).
   The call graph is acyclic by construction (the validator rejects
   recursion), so repeated passes reach a fixed point. *)

type config = {
  max_callee_instrs : int;
  max_callee_blocks : int;
  (* Stop inlining into a caller once it has grown beyond this many
     instructions. *)
  max_caller_instrs : int;
}

let default_config =
  { max_callee_instrs = 48; max_callee_blocks = 8; max_caller_instrs = 600 }

let inlinable (config : config) (callee : Ir.Func.t) =
  List.length callee.Ir.Func.blocks <= config.max_callee_blocks
  && Ir.Func.instr_count callee <= config.max_callee_instrs

let clone_counter = Atomic.make 0

(* Remap a callee operand into the caller's register window. *)
let remap_operand ~base (op : Ir.Types.operand) : Ir.Types.operand =
  match op with
  | Ir.Types.Reg r -> Ir.Types.Reg (base + r)
  | Ir.Types.Imm _ | Ir.Types.Fimm _ -> op

(* Inline one [call] instruction found in [caller]'s block [blk] at
   position [pos].  Returns true when performed. *)
let inline_site (caller : Ir.Func.t) (callee : Ir.Func.t)
    (blk : Ir.Func.block) ~(pos : int) ~(dest : Ir.Types.reg option)
    ~(args : Ir.Types.operand list) : unit =
  let gen = Atomic.fetch_and_add clone_counter 1 in
  let tag l = Printf.sprintf "%s$i%d_%s" blk.Ir.Func.blabel gen l in
  (* Fresh register window for the callee's registers. *)
  let reg_base = caller.Ir.Func.next_reg in
  caller.Ir.Func.next_reg <-
    caller.Ir.Func.next_reg + callee.Ir.Func.next_reg + 1;
  let before = List.filteri (fun i _ -> i < pos) blk.Ir.Func.instrs in
  let after = List.filteri (fun i _ -> i > pos) blk.Ir.Func.instrs in
  let cont_label = tag "cont" in
  (* Parameter moves appended to the first half of the split block. *)
  let param_moves =
    List.map2
      (fun p arg ->
        Ir.Instr.make ~id:(Ir.Func.fresh_instr_id caller)
          (Ir.Instr.Mov (reg_base + p, arg)))
      callee.Ir.Func.params args
  in
  (* Clone the callee's blocks. *)
  let cloned =
    List.map
      (fun (b : Ir.Func.block) ->
        let instrs =
          List.map
            (fun (i : Ir.Instr.t) ->
              assert (i.Ir.Instr.guard = Ir.Types.p_true);
              let kind =
                Ir.Instr.map_operands (remap_operand ~base:reg_base)
                  i.Ir.Instr.kind
              in
              let kind = Ir.Instr.map_def (fun d -> reg_base + d) kind in
              let kind =
                match kind with
                | Ir.Instr.Exit l -> Ir.Instr.Exit (tag l)
                | _ -> kind
              in
              Ir.Instr.make ~id:(Ir.Func.fresh_instr_id caller) kind)
            b.Ir.Func.instrs
        in
        let term, ret_moves =
          match b.Ir.Func.term with
          | Ir.Func.Jmp l -> (Ir.Func.Jmp (tag l), [])
          | Ir.Func.Br (c, l1, l2) ->
            (Ir.Func.Br (remap_operand ~base:reg_base c, tag l1, tag l2), [])
          | Ir.Func.Ret v ->
            let moves =
              match (dest, v) with
              | Some d, Some v ->
                [
                  Ir.Instr.make ~id:(Ir.Func.fresh_instr_id caller)
                    (Ir.Instr.Mov (d, remap_operand ~base:reg_base v));
                ]
              | Some d, None ->
                [
                  Ir.Instr.make ~id:(Ir.Func.fresh_instr_id caller)
                    (Ir.Instr.Mov (d, Ir.Types.Imm 0));
                ]
              | None, _ -> []
            in
            (Ir.Func.Jmp cont_label, moves)
        in
        {
          Ir.Func.blabel = tag b.Ir.Func.blabel;
          instrs = instrs @ ret_moves;
          term;
        })
      callee.Ir.Func.blocks
  in
  let entry_label =
    match callee.Ir.Func.blocks with
    | b :: _ -> tag b.Ir.Func.blabel
    | [] -> assert false
  in
  let cont_block =
    { Ir.Func.blabel = cont_label; instrs = after; term = blk.Ir.Func.term }
  in
  blk.Ir.Func.instrs <- before @ param_moves;
  blk.Ir.Func.term <- Ir.Func.Jmp entry_label;
  (* Keep block order: continuation and clones right after the split
     block. *)
  let rec insert_after = function
    | [] -> []
    | (b : Ir.Func.block) :: rest when b.Ir.Func.blabel = blk.Ir.Func.blabel
      -> (b :: cloned) @ (cont_block :: rest)
    | b :: rest -> b :: insert_after rest
  in
  caller.Ir.Func.blocks <- insert_after caller.Ir.Func.blocks;
  (* The callee may need more predicates than the caller reserved. *)
  caller.Ir.Func.next_pred <-
    max caller.Ir.Func.next_pred callee.Ir.Func.next_pred

(* Find the first inlinable call site in a function. *)
let find_site (config : config) (p : Ir.Func.program) (caller : Ir.Func.t) :
    (Ir.Func.block * int * Ir.Func.t * Ir.Types.reg option
     * Ir.Types.operand list)
    option =
  if Ir.Func.instr_count caller > config.max_caller_instrs then None
  else
    List.find_map
      (fun (blk : Ir.Func.block) ->
        List.find_map
          (fun (pos, (i : Ir.Instr.t)) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Call (dest, name, args, _)
              when i.Ir.Instr.guard = Ir.Types.p_true ->
              let callee = Ir.Func.find_func p name in
              if callee.Ir.Func.fname <> caller.Ir.Func.fname
                 && inlinable config callee
              then Some (blk, pos, callee, dest, args)
              else None
            | _ -> None)
          (List.mapi (fun i x -> (i, x)) blk.Ir.Func.instrs))
      caller.Ir.Func.blocks

let run_func ?(config = default_config) (p : Ir.Func.program)
    (caller : Ir.Func.t) : int =
  let inlined = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match find_site config p caller with
    | Some (blk, pos, callee, dest, args) ->
      inline_site caller callee blk ~pos ~dest ~args;
      incr inlined
    | None -> continue_ := false
  done;
  !inlined

let run ?(config = default_config) (p : Ir.Func.program) : int =
  (* Process in reverse topological order of the (acyclic) call graph so
     leaf functions are already fully inlined when their callers copy
     them.  A simple fixpoint over the function list achieves the same
     result because sites re-expose after each pass. *)
  List.fold_left (fun acc f -> acc + run_func ~config p f) 0 p.Ir.Func.funcs
