(* Loop unrolling.

   Innermost natural loops below a size threshold are unrolled by cloning
   the whole loop body (header included) and chaining the back edges:
   original -> copy1 -> ... -> original header.  Exit edges of every copy
   keep their original targets, so trip counts that do not divide the
   unroll factor remain correct.  Registers are deliberately not renamed —
   copies execute sequentially, never concurrently.

   On its own this transformation changes little; its payoff is the large
   acyclic region it hands to hyperblock formation and the scheduler, the
   same pipeline structure Trimaran uses. *)

type config = {
  factor : int;            (* total copies of the body after unrolling *)
  max_blocks : int;
  max_instrs : int;
}

let default_config = { factor = 2; max_blocks = 6; max_instrs = 48 }

let clone_counter = Atomic.make 0

let clone_label l gen = Printf.sprintf "%s$u%d" l gen

let clone_block (f : Ir.Func.t) (b : Ir.Func.block) gen : Ir.Func.block =
  {
    Ir.Func.blabel = clone_label b.Ir.Func.blabel gen;
    instrs =
      List.map
        (fun (i : Ir.Instr.t) ->
          { i with Ir.Instr.id = Ir.Func.fresh_instr_id f })
        b.Ir.Func.instrs;
    term = b.Ir.Func.term;
  }

(* Rewrite targets of a cloned block: in-loop targets point into the same
   copy; the header target (the back edge) points at [next_header]. *)
let rewire (b : Ir.Func.block) ~in_loop ~header ~next_header ~gen : unit =
  let map l =
    if l = header then next_header
    else if in_loop l then clone_label l gen
    else l
  in
  b.Ir.Func.instrs <-
    List.map
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.kind with
        | Ir.Instr.Exit l -> { i with Ir.Instr.kind = Ir.Instr.Exit (map l) }
        | _ -> i)
      b.Ir.Func.instrs;
  b.Ir.Func.term <-
    (match b.Ir.Func.term with
    | Ir.Func.Jmp l -> Ir.Func.Jmp (map l)
    | Ir.Func.Br (c, l1, l2) -> Ir.Func.Br (c, map l1, map l2)
    | Ir.Func.Ret _ as t -> t)

let loop_size (g : Ir.Cfg.t) (l : Ir.Cfg.loop) =
  List.fold_left
    (fun acc bi ->
      acc + List.length (Ir.Cfg.block_of g bi).Ir.Func.instrs)
    0 l.Ir.Cfg.body

(* Is [l] innermost (no other loop header strictly inside it)? *)
let innermost (loops : Ir.Cfg.loop list) (l : Ir.Cfg.loop) =
  not
    (List.exists
       (fun (l' : Ir.Cfg.loop) ->
         l'.Ir.Cfg.header <> l.Ir.Cfg.header
         && List.mem l'.Ir.Cfg.header l.Ir.Cfg.body)
       loops)

let unroll_loop (cfg : config) (f : Ir.Func.t) (g : Ir.Cfg.t)
    (l : Ir.Cfg.loop) : unit =
  let header = g.Ir.Cfg.labels.(l.Ir.Cfg.header) in
  let body_labels = List.map (fun i -> g.Ir.Cfg.labels.(i)) l.Ir.Cfg.body in
  let in_loop lbl = List.mem lbl body_labels in
  let body_blocks = List.map (Ir.Func.find_block f) body_labels in
  let base_gen = (Atomic.fetch_and_add clone_counter 1 + 1) * 1000 in
  (* Build copies 1 .. factor-1. *)
  let copies =
    List.init (cfg.factor - 1) (fun c ->
        let gen = base_gen + c in
        let blocks = List.map (fun b -> clone_block f b gen) body_blocks in
        (gen, blocks))
  in
  (* Wire copy c's back edge to copy c+1's header; the last copy's back
     edge returns to the original header. *)
  List.iteri
    (fun idx (gen, blocks) ->
      let next_header =
        if idx + 1 < List.length copies then
          clone_label header (base_gen + idx + 1)
        else header
      in
      List.iter
        (fun b -> rewire b ~in_loop ~header ~next_header ~gen)
        blocks)
    copies;
  (* Original loop's back edges now enter copy 1. *)
  (match copies with
  | (first_gen, _) :: _ ->
    let first_header = clone_label header first_gen in
    let remap l = if l = header then first_header else l in
    List.iter
      (fun (b : Ir.Func.block) ->
        b.Ir.Func.instrs <-
          List.map
            (fun (i : Ir.Instr.t) ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Exit l ->
                { i with Ir.Instr.kind = Ir.Instr.Exit (remap l) }
              | _ -> i)
            b.Ir.Func.instrs;
        b.Ir.Func.term <-
          (match b.Ir.Func.term with
          | Ir.Func.Jmp l -> Ir.Func.Jmp (remap l)
          | Ir.Func.Br (c, l1, l2) -> Ir.Func.Br (c, remap l1, remap l2)
          | Ir.Func.Ret _ as t -> t))
      body_blocks
  | [] -> ());
  f.Ir.Func.blocks <-
    f.Ir.Func.blocks @ List.concat_map (fun (_, bs) -> bs) copies

let run_func ?(config = default_config) (f : Ir.Func.t) : unit =
  if config.factor > 1 then begin
    let g = Ir.Cfg.build f in
    let loops = Ir.Cfg.loops g in
    let candidates =
      List.filter
        (fun l ->
          innermost loops l
          && List.length l.Ir.Cfg.body <= config.max_blocks
          && loop_size g l <= config.max_instrs)
        loops
    in
    (* Unroll against the CFG snapshot: bodies of distinct innermost loops
       are disjoint, so one snapshot serves them all. *)
    List.iter (unroll_loop config f g) candidates
  end

let run ?(config = default_config) (p : Ir.Func.program) : unit =
  List.iter (run_func ~config) p.Ir.Func.funcs
