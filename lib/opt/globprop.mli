(** Function-wide propagation of uniquely-defined constants and copies:
    registers with exactly one unpredicated definition behave like SSA
    names, so a unique [mov r, imm] can feed every use across blocks. *)

val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
