(** Constant folding with the interpreter's exact integer semantics
    (division and remainder by zero yield zero), plus algebraic
    identities. *)

val fold_ibin : Ir.Types.ibinop -> int -> int -> int option
val fold_kind : Ir.Instr.kind -> Ir.Instr.kind
val simplify_kind : Ir.Instr.kind -> Ir.Instr.kind

val run_block : Ir.Func.block -> unit
val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
