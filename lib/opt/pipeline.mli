(** The standard scalar pipeline run after lowering and before the
    heuristic-driven passes: fold/propagate/DCE/simplify rounds, inlining,
    and loop unrolling. *)

type config = {
  inline : Inline.config option;
  unroll : Unroll.config option;
  iterations : int;
}

val default : config

val no_unroll : config
(** Used by the prefetching study: ORC's prefetch phase runs on clean
    loop nests, which unrolling would obscure. *)

val scalar_round : Ir.Func.program -> unit
val run : ?config:config -> Ir.Func.program -> unit
