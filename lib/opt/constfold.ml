(* Constant folding: arithmetic and comparisons over immediate operands
   collapse to moves.  Integer semantics match the interpreter exactly
   (division and remainder by zero yield zero). *)

let fold_ibin op a b =
  match op with
  | Ir.Types.Add -> Some (a + b)
  | Ir.Types.Sub -> Some (a - b)
  | Ir.Types.Mul -> Some (a * b)
  | Ir.Types.Div -> Some (if b = 0 then 0 else a / b)
  | Ir.Types.Rem -> Some (if b = 0 then 0 else a mod b)
  | Ir.Types.Band -> Some (a land b)
  | Ir.Types.Bor -> Some (a lor b)
  | Ir.Types.Bxor -> Some (a lxor b)
  | Ir.Types.Shl -> Some (a lsl (b land 63))
  | Ir.Types.Shr -> Some (a asr (b land 63))

let fold_fbin op a b =
  match op with
  | Ir.Types.Fadd -> a +. b
  | Ir.Types.Fsub -> a -. b
  | Ir.Types.Fmul -> a *. b
  | Ir.Types.Fdiv -> if b = 0.0 then 0.0 else a /. b

let fold_icmp c a b =
  let r =
    match c with
    | Ir.Types.Ceq -> a = b
    | Ir.Types.Cne -> a <> b
    | Ir.Types.Clt -> a < b
    | Ir.Types.Cle -> a <= b
    | Ir.Types.Cgt -> a > b
    | Ir.Types.Cge -> a >= b
  in
  if r then 1 else 0

let fold_kind (k : Ir.Instr.kind) : Ir.Instr.kind =
  match k with
  | Ir.Instr.Ibin (op, d, Ir.Types.Imm a, Ir.Types.Imm b) -> (
    match fold_ibin op a b with
    | Some v -> Ir.Instr.Mov (d, Ir.Types.Imm v)
    | None -> k)
  | Ir.Instr.Fbin (op, d, Ir.Types.Fimm a, Ir.Types.Fimm b) ->
    Ir.Instr.Mov (d, Ir.Types.Fimm (fold_fbin op a b))
  | Ir.Instr.Icmp (c, d, Ir.Types.Imm a, Ir.Types.Imm b) ->
    Ir.Instr.Mov (d, Ir.Types.Imm (fold_icmp c a b))
  | Ir.Instr.Itof (d, Ir.Types.Imm a) ->
    Ir.Instr.Mov (d, Ir.Types.Fimm (float_of_int a))
  | Ir.Instr.Ftoi (d, Ir.Types.Fimm a) ->
    Ir.Instr.Mov (d, Ir.Types.Imm (int_of_float a))
  | Ir.Instr.Funop (op, d, Ir.Types.Fimm a) ->
    Ir.Instr.Mov
      ( d,
        Ir.Types.Fimm
          (match op with
          | Ir.Types.Fneg -> -.a
          | Ir.Types.Fabs -> Float.abs a
          | Ir.Types.Fsqrt -> sqrt (Float.abs a)) )
  | _ -> k

(* Algebraic identities that do not require both operands constant. *)
let simplify_kind (k : Ir.Instr.kind) : Ir.Instr.kind =
  match k with
  | Ir.Instr.Ibin (Ir.Types.Add, d, a, Ir.Types.Imm 0)
  | Ir.Instr.Ibin (Ir.Types.Add, d, Ir.Types.Imm 0, a)
  | Ir.Instr.Ibin (Ir.Types.Sub, d, a, Ir.Types.Imm 0)
  | Ir.Instr.Ibin (Ir.Types.Mul, d, a, Ir.Types.Imm 1)
  | Ir.Instr.Ibin (Ir.Types.Mul, d, Ir.Types.Imm 1, a)
  | Ir.Instr.Ibin (Ir.Types.Div, d, a, Ir.Types.Imm 1) ->
    Ir.Instr.Mov (d, a)
  | Ir.Instr.Ibin (Ir.Types.Mul, d, _, Ir.Types.Imm 0)
  | Ir.Instr.Ibin (Ir.Types.Mul, d, Ir.Types.Imm 0, _) ->
    Ir.Instr.Mov (d, Ir.Types.Imm 0)
  | Ir.Instr.Fbin (Ir.Types.Fadd, d, a, Ir.Types.Fimm 0.0)
  | Ir.Instr.Fbin (Ir.Types.Fadd, d, Ir.Types.Fimm 0.0, a)
  | Ir.Instr.Fbin (Ir.Types.Fsub, d, a, Ir.Types.Fimm 0.0)
  | Ir.Instr.Fbin (Ir.Types.Fmul, d, a, Ir.Types.Fimm 1.0)
  | Ir.Instr.Fbin (Ir.Types.Fmul, d, Ir.Types.Fimm 1.0, a) ->
    Ir.Instr.Mov (d, a)
  | _ -> k

let run_block (b : Ir.Func.block) : unit =
  b.Ir.Func.instrs <-
    List.map
      (fun (i : Ir.Instr.t) ->
        { i with Ir.Instr.kind = simplify_kind (fold_kind i.Ir.Instr.kind) })
      b.Ir.Func.instrs

let run_func (f : Ir.Func.t) : unit = List.iter run_block f.Ir.Func.blocks

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
