(** Machine-oriented peephole rewrites (strength reduction of power-of-two
    multiplies to shifts, x+x to a shift, no-op shift and self-move
    removal).  Division is never strength-reduced: truncation toward zero
    differs from an arithmetic shift on negatives. *)

val log2_exact : int -> int option
val rewrite : Ir.Instr.kind -> Ir.Instr.kind
val run_block : Ir.Func.block -> unit
val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
