(** Block-local copy and constant propagation.  Only unpredicated moves
    establish copies; any redefinition of either side kills them. *)

val run_block : Ir.Func.block -> unit
val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
