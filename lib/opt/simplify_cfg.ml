(* CFG simplification: jump threading through empty blocks, merging of
   straight-line block pairs, and removal of unreachable blocks.  Merging
   grows basic blocks, which both the list scheduler and hyperblock
   formation feed on (this is the moral equivalent of Trimaran's backedge
   coalescing setup). *)

(* Retarget every control transfer in [f] according to [redirect]. *)
let retarget (f : Ir.Func.t) (redirect : Ir.Types.label -> Ir.Types.label) :
    unit =
  List.iter
    (fun (b : Ir.Func.block) ->
      b.Ir.Func.instrs <-
        List.map
          (fun (i : Ir.Instr.t) ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Exit l ->
              { i with Ir.Instr.kind = Ir.Instr.Exit (redirect l) }
            | _ -> i)
          b.Ir.Func.instrs;
      b.Ir.Func.term <-
        (match b.Ir.Func.term with
        | Ir.Func.Jmp l -> Ir.Func.Jmp (redirect l)
        | Ir.Func.Br (c, l1, l2) -> Ir.Func.Br (c, redirect l1, redirect l2)
        | Ir.Func.Ret _ as t -> t))
    f.Ir.Func.blocks

(* Thread jumps through empty blocks whose terminator is an unconditional
   jump. *)
let thread_jumps (f : Ir.Func.t) : bool =
  let trivial = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.Func.block) ->
      match (b.Ir.Func.instrs, b.Ir.Func.term) with
      | [], Ir.Func.Jmp target when target <> b.Ir.Func.blabel ->
        Hashtbl.replace trivial b.Ir.Func.blabel target
      | _ -> ())
    f.Ir.Func.blocks;
  if Hashtbl.length trivial = 0 then false
  else begin
    (* Resolve chains, guarding against cycles of empty blocks. *)
    let rec resolve seen l =
      match Hashtbl.find_opt trivial l with
      | Some next when not (List.mem next seen) -> resolve (l :: seen) next
      | _ -> l
    in
    let entry_label =
      match f.Ir.Func.blocks with
      | b :: _ -> b.Ir.Func.blabel
      | [] -> ""
    in
    retarget f (fun l -> resolve [] l);
    (* Drop now-unreferenced empty blocks (except the entry). *)
    let referenced = Hashtbl.create 16 in
    Hashtbl.replace referenced entry_label ();
    List.iter
      (fun (b : Ir.Func.block) ->
        List.iter
          (fun l -> Hashtbl.replace referenced l ())
          (Ir.Func.successors b))
      f.Ir.Func.blocks;
    f.Ir.Func.blocks <-
      List.filter
        (fun (b : Ir.Func.block) ->
          Hashtbl.mem referenced b.Ir.Func.blabel
          || not (Hashtbl.mem trivial b.Ir.Func.blabel))
        f.Ir.Func.blocks;
    true
  end

(* Merge [a; jmp b] with [b] when b's only predecessor is a and b is not
   the entry block. *)
let merge_pairs (f : Ir.Func.t) : bool =
  let pred_count = Hashtbl.create 16 in
  let bump l =
    Hashtbl.replace pred_count l
      (1 + Option.value ~default:0 (Hashtbl.find_opt pred_count l))
  in
  List.iter
    (fun (b : Ir.Func.block) -> List.iter bump (Ir.Func.successors b))
    f.Ir.Func.blocks;
  let entry_label =
    match f.Ir.Func.blocks with b :: _ -> b.Ir.Func.blabel | [] -> ""
  in
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.Func.block) -> Hashtbl.replace by_label b.Ir.Func.blabel b)
    f.Ir.Func.blocks;
  let merged_away = Hashtbl.create 8 in
  let changed = ref false in
  List.iter
    (fun (a : Ir.Func.block) ->
      if not (Hashtbl.mem merged_away a.Ir.Func.blabel) then begin
        (* Follow a chain of mergeable successors. *)
        let continue_ = ref true in
        while !continue_ do
          match a.Ir.Func.term with
          | Ir.Func.Jmp l
            when l <> entry_label
                 && l <> a.Ir.Func.blabel
                 && Option.value ~default:0 (Hashtbl.find_opt pred_count l) = 1
            -> (
            match Hashtbl.find_opt by_label l with
            | Some b when not (Hashtbl.mem merged_away l) ->
              a.Ir.Func.instrs <- a.Ir.Func.instrs @ b.Ir.Func.instrs;
              a.Ir.Func.term <- b.Ir.Func.term;
              Hashtbl.replace merged_away l ();
              changed := true
            | _ -> continue_ := false)
          | _ -> continue_ := false
        done
      end)
    f.Ir.Func.blocks;
  f.Ir.Func.blocks <-
    List.filter
      (fun (b : Ir.Func.block) -> not (Hashtbl.mem merged_away b.Ir.Func.blabel))
      f.Ir.Func.blocks;
  !changed

let remove_unreachable (f : Ir.Func.t) : unit =
  match f.Ir.Func.blocks with
  | [] -> ()
  | entry :: _ ->
    let by_label = Hashtbl.create 16 in
    List.iter
      (fun (b : Ir.Func.block) -> Hashtbl.replace by_label b.Ir.Func.blabel b)
      f.Ir.Func.blocks;
    let reachable = Hashtbl.create 16 in
    let rec dfs (b : Ir.Func.block) =
      if not (Hashtbl.mem reachable b.Ir.Func.blabel) then begin
        Hashtbl.replace reachable b.Ir.Func.blabel ();
        List.iter
          (fun l ->
            match Hashtbl.find_opt by_label l with
            | Some b' -> dfs b'
            | None -> ())
          (Ir.Func.successors b)
      end
    in
    dfs entry;
    f.Ir.Func.blocks <-
      List.filter
        (fun (b : Ir.Func.block) -> Hashtbl.mem reachable b.Ir.Func.blabel)
        f.Ir.Func.blocks

let run_func (f : Ir.Func.t) : unit =
  let rec fix n =
    if n > 0 then begin
      let c1 = thread_jumps f in
      let c2 = merge_pairs f in
      if c1 || c2 then fix (n - 1)
    end
  in
  fix 10;
  remove_unreachable f

let run (p : Ir.Func.program) : unit = List.iter run_func p.Ir.Func.funcs
