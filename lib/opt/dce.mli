(** Dead-code elimination: effect-free instructions whose definitions are
    never observed anywhere in the function, iterated to a fixed point. *)

val run_func : Ir.Func.t -> unit
val run : Ir.Func.program -> unit
